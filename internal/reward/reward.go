package reward

import "fmt"

// Kind selects the reward formulation.
type Kind int

// Reward-function variants from Appendix C.1.1.
const (
	// RFCDBTune is the paper's reward (Eq. 6 plus the zeroing rule: a
	// positive reward with a regression against the previous step is
	// clamped to 0).
	RFCDBTune Kind = iota
	// RFA compares only against the previous step.
	RFA
	// RFB compares only against the initial settings.
	RFB
	// RFC is Eq. 6 without the zeroing rule.
	RFC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RFCDBTune:
		return "RF-CDBTune"
	case RFA:
		return "RF-A"
	case RFB:
		return "RF-B"
	case RFC:
		return "RF-C"
	default:
		return fmt.Sprintf("RF(%d)", int(k))
	}
}

// CrashReward is the punishment for configurations that crash the
// instance; §5.2.3 reports using a large negative reward (−100) rather
// than constraining the knob ranges.
const CrashReward = -100

// Calc computes rewards across one tuning episode.
type Calc struct {
	Kind   Kind
	CT, CL float64

	t0, l0     float64
	prevT      float64
	prevL      float64
	initalized bool
}

// New returns a reward calculator. ct and cl weight throughput and latency
// and must sum to 1; the paper defaults to 0.5/0.5.
func New(kind Kind, ct, cl float64) *Calc {
	if ct < 0 || cl < 0 || ct+cl < 0.999 || ct+cl > 1.001 {
		panic(fmt.Sprintf("reward: CT=%v CL=%v must be non-negative and sum to 1", ct, cl))
	}
	return &Calc{Kind: kind, CT: ct, CL: cl}
}

// Init records the performance of the initial configuration (T0, L0).
func (c *Calc) Init(t0, l0 float64) {
	c.t0, c.l0 = t0, l0
	c.prevT, c.prevL = t0, l0
	c.initalized = true
}

// Initialized reports whether Init has been called.
func (c *Calc) Initialized() bool { return c.initalized }

// Compute returns the reward for the performance observed after the
// current tuning step and advances the previous-step state.
func (c *Calc) Compute(t, l float64) float64 {
	if !c.initalized {
		panic("reward: Compute before Init")
	}
	// Eq. 4: throughput deltas (higher is better).
	dT0 := (t - c.t0) / c.t0
	dTt := (t - c.prevT) / c.prevT
	// Eq. 5: latency deltas (lower is better, hence the sign flips).
	dL0 := (-l + c.l0) / c.l0
	dLt := (-l + c.prevL) / c.prevL

	rT := c.partial(dT0, dTt)
	rL := c.partial(dL0, dLt)
	c.prevT, c.prevL = t, l
	return c.CT*rT + c.CL*rL
}

// partial evaluates Eq. 6 for one metric given its initial-relative and
// previous-relative deltas, honoring the variant's comparison rule.
func (c *Calc) partial(d0, dt float64) float64 {
	switch c.Kind {
	case RFA:
		d0 = dt // only the previous step matters
	case RFB:
		dt = d0 // only the initial settings matter
	}
	var r float64
	if d0 > 0 {
		r = ((1+d0)*(1+d0) - 1) * abs(1+dt)
		// The paper's refinement: a positive reward is zeroed when the
		// step regressed against the previous one, to stop the agent
		// farming reward from oscillation. RF-C omits this rule.
		if c.Kind != RFC && c.Kind != RFB && dt < 0 {
			r = 0
		}
	} else {
		r = -((1-d0)*(1-d0) - 1) * abs(1-dt)
	}
	return r
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
