// Package reward implements CDBTune's reward function (§4.2, Eq. 4-7) and
// the three alternatives it is compared against in Appendix C.1.1.
//
// The reward encodes a DBA's judgement: performance is compared both to
// the initial settings (is the tuning trend right?) and to the previous
// step (is this step an improvement?). Throughput and latency rewards are
// combined with user-weighted coefficients CT and CL, CT + CL = 1.
package reward
