package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Server is the HTTP front-end over a Manager: a JSON API for submitting
// tuning requests, watching their progress and administering the model
// registry. Built on net/http alone.
type Server struct {
	m    *Manager
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// NewServer wires the API routes over m.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/models", s.handleModels)
	s.mux.HandleFunc("POST /api/v1/models/{id}/promote", s.handlePromote)
	s.mux.HandleFunc("DELETE /api/v1/models/{id}", s.handleDeleteModel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler exposes the routed mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and the manager's worker pool.
func (s *Server) Close() error {
	var err error
	if s.http != nil {
		err = s.http.Close()
	}
	s.m.Close()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Admission control: shed load with an explicit retry hint rather
		// than queueing unboundedly.
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSec))
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a session's progress as JSON lines until the
// session reaches a terminal state (or the client goes away). Each line is
// one Event; the final line is the terminal JobStatus tagged as such.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	after := 0
	for {
		events, notify, ok := s.m.Events(id, after)
		if !ok {
			return
		}
		for _, e := range events {
			_ = enc.Encode(e)
			after = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		st, _ := s.m.Job(id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			_ = enc.Encode(map[string]any{"final": true, "job": st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-time.After(30 * time.Second):
			// Keep-alive tick so an idle stream is detected as live.
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		code := http.StatusConflict
		if _, ok := s.m.Job(id); !ok {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.m.Job(id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models":  s.m.Registry().List(),
		"corrupt": s.m.Registry().Corrupt(),
	})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Registry().Promote(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"promoted": id})
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Registry().Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	mt := s.m.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.m.Workers(),
		"active":  mt.Active,
		"queued":  mt.Queued,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics())
}
