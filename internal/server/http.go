package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// DrainTimeout bounds how long Close waits for in-flight HTTP exchanges
// and queued sessions before cutting them off.
const DrainTimeout = 10 * time.Second

// Server is the HTTP front-end over a Manager: a JSON API for submitting
// tuning requests, watching their progress and administering the model
// registry. Built on net/http alone.
type Server struct {
	m    *Manager
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	drainTimeout time.Duration

	mu        sync.Mutex
	promExtra func() []PromMetric
	jitter    *rand.Rand
}

// NewServer wires the API routes over m.
func NewServer(m *Manager) *Server {
	s := &Server{
		m:            m,
		mux:          http.NewServeMux(),
		drainTimeout: DrainTimeout,
		jitter:       rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/models", s.handleModels)
	s.mux.HandleFunc("POST /api/v1/models/{id}/promote", s.handlePromote)
	s.mux.HandleFunc("DELETE /api/v1/models/{id}", s.handleDeleteModel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetrics)
	return s
}

// Handler exposes the routed mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Handle registers an extra route on the server's mux — the fleet layer
// adds its routing/forwarding endpoints this way.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
}

// SetPromExtra installs a hook whose metrics are appended to the
// Prometheus exposition — the fleet layer reports lease epoch, failover
// count and journal depth through it.
func (s *Server) SetPromExtra(fn func() []PromMetric) {
	s.mu.Lock()
	s.promExtra = fn
	s.mu.Unlock()
}

// SetDrainTimeout overrides how long Close waits for a graceful drain.
func (s *Server) SetDrainTimeout(d time.Duration) {
	if d > 0 {
		s.drainTimeout = d
	}
}

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.mux}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close drains and stops the server: new submissions are rejected with
// ErrDraining (503), in-flight HTTP exchanges and queued sessions get up
// to DrainTimeout to finish (http.Server.Shutdown, not Close, so accepted
// connections are not cut mid-response), then the manager's worker pool
// is cancelled and joined.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
	defer cancel()
	var err error
	if s.m != nil {
		err = s.m.Drain(ctx)
	}
	if s.http != nil {
		if serr := s.http.Shutdown(ctx); serr != nil && err == nil {
			err = serr
		}
	}
	s.m.Close()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	st, err := s.m.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		// Admission control: shed load with an explicit retry hint rather
		// than queueing unboundedly. The hint is jittered so a herd of
		// rejected clients does not re-arrive on the same second.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		// This process is going away; tell clients to fail over now rather
		// than retry here.
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// retryAfter picks the jittered backoff hint for a 429:
// RetryAfterSec + uniform[0, RetryAfterJitterSec].
func (s *Server) retryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RetryAfterSec + s.jitter.Intn(RetryAfterJitterSec+1)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a session's progress as JSON lines until the
// session reaches a terminal state (or the client goes away). Each line is
// one Event; the final line is the terminal JobStatus tagged as such.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.m.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	after := 0
	for {
		events, notify, ok := s.m.Events(id, after)
		if !ok {
			return
		}
		for _, e := range events {
			_ = enc.Encode(e)
			after = e.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		st, _ := s.m.Job(id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			_ = enc.Encode(map[string]any{"final": true, "job": st})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-time.After(30 * time.Second):
			// Keep-alive tick so an idle stream is detected as live.
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		code := http.StatusConflict
		if _, ok := s.m.Job(id); !ok {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	st, _ := s.m.Job(id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models":  s.m.Registry().List(),
		"corrupt": s.m.Registry().Corrupt(),
	})
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Registry().Promote(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"promoted": id})
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Registry().Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	mt := s.m.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.m.Workers(),
		"active":  mt.Active,
		"queued":  mt.Queued,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics())
}

// handlePromMetrics serves the Prometheus text exposition: the manager's
// service counters plus whatever the SetPromExtra hook contributes.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	extra := s.promExtra
	s.mu.Unlock()
	ms := s.m.PromMetrics()
	if extra != nil {
		ms = append(ms, extra()...)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = WritePromText(w, ms)
}
