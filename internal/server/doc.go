// Package server is the multi-tenant serving layer of the reproduction:
// the piece that turns the tuning algorithm into the cloud service the
// paper deploys (§5: users submit tuning requests; the system matches the
// workload against previously trained models and fine-tunes the closest
// one rather than training from scratch).
//
// # Architecture
//
//	HTTP JSON API (http.go)
//	  └─ Manager (manager.go): bounded worker pool + admission queue
//	       └─ per-session pipeline:
//	            fingerprint → registry match → warm-start or scratch
//	            training → guarded online tuning (controller) → registry
//	            write-back
//
// Admission control is queue-depth backpressure: Submit fails fast with
// ErrQueueFull once QueueDepth sessions are waiting, which the HTTP layer
// surfaces as 429 with a Retry-After header — the service sheds load
// instead of accumulating unbounded latency.
//
// Each session trains and serves its *own* core.Tuner, so sessions never
// contend on an agent lock; the shared, synchronized pieces are the
// registry (its own mutex), the manager's accounting (one mutex), and —
// when a caller wires several sessions through one controller — the
// controller's request state (see controller.Controller).
//
// # Warm start
//
// A session fingerprints the submitted workload by measuring the user
// instance under its default configuration (the 63 internal metrics, plus
// read/write ratio and hardware class; see registry.Fingerprint) and asks
// the registry for the nearest model. A match within Config.MatchRadius
// seeds the session's agent, and fine-tuning replaces scratch training:
// training runs in chunks and stops as soon as the greedy policy's probed
// performance plateaus, so a well-matched model converges after a chunk
// or two while a scratch model must climb first. Which path was taken,
// the match distance, and the episodes saved versus the matched model's
// recorded scratch cost are all reported in the job status and the
// serving telemetry.
package server
