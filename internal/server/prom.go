package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromMetric is one sample in the Prometheus text exposition behind
// GET /metrics — hand-rolled (format version 0.0.4) so the service stays
// dependency-free.
type PromMetric struct {
	// Name is the metric name (snake_case, conventionally prefixed
	// "cdbtune_").
	Name string
	// Help is the one-line # HELP text.
	Help string
	// Type is "gauge" or "counter".
	Type string
	// Labels are optional label pairs rendered as {k="v",...} in sorted
	// key order.
	Labels map[string]string
	Value  float64
}

// WritePromText renders metrics in the Prometheus text format. Samples
// sharing a name are grouped under one # HELP/# TYPE header (the first
// occurrence's help and type win).
func WritePromText(w io.Writer, ms []PromMetric) error {
	seen := make(map[string]bool)
	for _, m := range ms {
		if !seen[m.Name] {
			seen[m.Name] = true
			typ := m.Type
			if typ == "" {
				typ = "gauge"
			}
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", m.Name, promLabels(m.Labels), m.Value); err != nil {
			return err
		}
	}
	return nil
}

func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// PromMetrics renders the service counters as Prometheus samples — the
// manager-level slice of the /metrics exposition.
func (m *Manager) PromMetrics() []PromMetric {
	mt := m.Metrics()
	draining := 0.0
	if m.Draining() {
		draining = 1
	}
	return []PromMetric{
		{Name: "cdbtune_jobs_submitted_total", Help: "Tuning requests admitted.", Type: "counter", Value: float64(mt.Submitted)},
		{Name: "cdbtune_jobs_rejected_total", Help: "Tuning requests rejected by admission control.", Type: "counter", Value: float64(mt.Rejected)},
		{Name: "cdbtune_jobs_completed_total", Help: "Sessions finished successfully.", Type: "counter", Value: float64(mt.Completed)},
		{Name: "cdbtune_jobs_failed_total", Help: "Sessions finished in error.", Type: "counter", Value: float64(mt.Failed)},
		{Name: "cdbtune_jobs_canceled_total", Help: "Sessions canceled.", Type: "counter", Value: float64(mt.Canceled)},
		{Name: "cdbtune_jobs_active", Help: "Sessions currently training or tuning.", Type: "gauge", Value: float64(mt.Active)},
		{Name: "cdbtune_queue_depth", Help: "Sessions waiting in the admission queue.", Type: "gauge", Value: float64(mt.Queued)},
		{Name: "cdbtune_draining", Help: "1 while the process drains for shutdown.", Type: "gauge", Value: draining},
		{Name: "cdbtune_warm_hits_total", Help: "Sessions warm-started from a registry match.", Type: "counter", Value: float64(mt.WarmHits)},
		{Name: "cdbtune_warm_misses_total", Help: "Sessions trained from scratch.", Type: "counter", Value: float64(mt.WarmMisses)},
		{Name: "cdbtune_episodes_trained_total", Help: "Training episodes run across sessions.", Type: "counter", Value: float64(mt.EpisodesTrained)},
		{Name: "cdbtune_episodes_saved_total", Help: "Training episodes avoided by warm starts.", Type: "counter", Value: float64(mt.EpisodesSaved)},
		{Name: "cdbtune_queue_wait_ms", Help: "Queue wait quantiles in milliseconds.", Type: "gauge", Labels: map[string]string{"quantile": "0.5"}, Value: mt.QueueWaitP50Ms},
		{Name: "cdbtune_queue_wait_ms", Labels: map[string]string{"quantile": "0.95"}, Value: mt.QueueWaitP95Ms},
		{Name: "cdbtune_submit_to_deploy_ms", Help: "Submit-to-deploy latency quantiles in milliseconds.", Type: "gauge", Labels: map[string]string{"quantile": "0.5"}, Value: mt.SubmitToDeployP50Ms},
		{Name: "cdbtune_submit_to_deploy_ms", Labels: map[string]string{"quantile": "0.99"}, Value: mt.SubmitToDeployP99Ms},
		{Name: "cdbtune_registry_entries", Help: "Models in the registry.", Type: "gauge", Value: float64(mt.RegistryEntries)},
		{Name: "cdbtune_registry_corrupt", Help: "Registry entries quarantined by CRC validation.", Type: "gauge", Value: float64(mt.RegistryCorrupt)},
	}
}
