package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"cdbtune/internal/controller"
	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/registry"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// ErrQueueFull rejects a submission when the admission queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("server: admission queue full")

// ErrTenantBusy rejects a submission when one tenant already has its full
// per-tenant share of the queue — admission control that keeps a single
// noisy tenant from starving the rest of the fleet's SLO.
var ErrTenantBusy = errors.New("server: tenant at its pending-job limit")

// ErrDraining rejects submissions while the manager drains for shutdown;
// the HTTP layer maps it to 503 so clients fail over to another process.
var ErrDraining = errors.New("server: draining")

// RetryAfterSec is the base backoff the service suggests to a rejected
// client; RetryAfterJitterSec is the jitter spread added on top so a
// synchronized client herd does not re-arrive on the same second.
const (
	RetryAfterSec       = 2
	RetryAfterJitterSec = 3
)

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Warm-start paths.
const (
	PathWarm    = "warm"
	PathScratch = "scratch"
)

// Config assembles a Manager. The zero value (plus a Registry) serves the
// full CDB knob catalog against the simulator with the paper's protocol.
type Config struct {
	// Registry is the model collection behind warm starts. Required. A
	// *registry.Registry serves one process; a *registry.Shared serves a
	// fleet out of one lease-replicated directory.
	Registry registry.Store

	// Workers is the session worker-pool size (default 2); QueueDepth the
	// admission queue bound beyond which Submit rejects (default 16).
	Workers    int
	QueueDepth int

	// MaxPerTenant bounds one tenant's pending (queued + running) jobs;
	// beyond it Submit rejects with ErrTenantBusy (0 = no per-tenant cap).
	MaxPerTenant int

	// IDPrefix namespaces job IDs ("node1" → "node1-job-0000") so IDs stay
	// unique across a fleet of processes.
	IDPrefix string

	// OnJobDone, when set, is called (without the manager lock) with every
	// session's terminal status — the fleet journal hook.
	OnJobDone func(JobStatus)

	// OnlineSteps is the per-request recommendation budget (paper: 5).
	OnlineSteps int

	// Scratch training runs in ChunkEpisodes-sized chunks between greedy
	// probes, for at least MinScratchEpisodes and at most
	// MaxScratchEpisodes; a warm-started session fine-tunes for at most
	// MaxFineTuneEpisodes. Training stops early once a probe fails to beat
	// the best probed throughput by more than ConvergeEps (relative) for
	// Patience consecutive probes. ProbeSteps is the number of greedy
	// actions per probe.
	MinScratchEpisodes  int
	MaxScratchEpisodes  int
	MaxFineTuneEpisodes int
	ChunkEpisodes       int
	Patience            int
	ProbeSteps          int
	ConvergeEps         float64

	// MatchRadius is the fingerprint distance under which a registry entry
	// counts as the same workload class and seeds the session's agent.
	MatchRadius float64

	// TrainWorkers is the parallelism of each session's offline training
	// (default 1 — sessions are already concurrent with each other).
	TrainWorkers int

	// Seed derives every session's deterministic seed stream.
	Seed int64

	// GuardK and GuardRadius configure each session's safety guardrail
	// (see controller.Config).
	GuardK      int
	GuardRadius float64

	// Timeline, when non-empty, appends a dynamic serving window to every
	// session (a per-request JobRequest.Timeline overrides it): after the
	// tuned model is registered, the session keeps serving the named
	// workload timeline (workload.TimelineByName) with the drift detector
	// armed, re-tuning in place whenever the workload fingerprint
	// diverges. ServeHours bounds the window in simulated hours (0 = one
	// timeline cycle), TimeScale overrides the timeline's compression
	// (simulated seconds per virtual second, 0 = the timeline's own), and
	// DriftThreshold overrides the detector threshold (0 = calibrated
	// default).
	Timeline       string
	ServeHours     float64
	TimeScale      float64
	DriftThreshold float64

	// Catalog is the tunable knob subset (default: the full CDB catalog).
	Catalog *knobs.Catalog
	// TunerConfig builds each session's tuner configuration (default
	// core.DefaultConfig). Tests swap in a small fast network.
	TunerConfig func(cat *knobs.Catalog) core.Config
	// MakeDB builds database instances — the user instance under tuning
	// and the fresh training/probe instances (default: the simulator).
	MakeDB func(inst simdb.Instance, seed int64) env.Database

	// Logf receives the manager's log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.Registry == nil {
		return errors.New("server: Config.Registry is required")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.OnlineSteps <= 0 {
		c.OnlineSteps = 5
	}
	if c.MinScratchEpisodes <= 0 {
		c.MinScratchEpisodes = 4
	}
	if c.MaxScratchEpisodes <= 0 {
		c.MaxScratchEpisodes = 8
	}
	if c.MaxScratchEpisodes < c.MinScratchEpisodes {
		c.MaxScratchEpisodes = c.MinScratchEpisodes
	}
	if c.MaxFineTuneEpisodes <= 0 {
		c.MaxFineTuneEpisodes = 2
	}
	if c.ChunkEpisodes <= 0 {
		c.ChunkEpisodes = 2
	}
	if c.Patience <= 0 {
		c.Patience = 1
	}
	if c.ProbeSteps <= 0 {
		c.ProbeSteps = 2
	}
	if c.ConvergeEps <= 0 {
		c.ConvergeEps = 0.01
	}
	if c.MatchRadius <= 0 {
		c.MatchRadius = 0.1
	}
	if c.TrainWorkers <= 0 {
		c.TrainWorkers = 1
	}
	if c.Catalog == nil {
		c.Catalog = knobs.MySQL(knobs.EngineCDB)
	}
	if c.TunerConfig == nil {
		c.TunerConfig = core.DefaultConfig
	}
	if c.MakeDB == nil {
		c.MakeDB = func(inst simdb.Instance, seed int64) env.Database {
			return simdb.New(knobs.EngineCDB, inst, seed)
		}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return nil
}

// JobRequest is one user tuning request.
type JobRequest struct {
	// Tenant identifies the requesting tenant for per-tenant admission
	// control and fleet routing ("" = the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// IdemKey is the fleet idempotency key this job was submitted under
	// ("" for direct submissions). It rides on the job itself so the
	// terminal-status hook can journal the outcome without a side table —
	// a session may finish before any post-Submit bookkeeping runs.
	IdemKey string `json:"idem_key,omitempty"`
	// Workload names a standard workload profile (workload.ByName).
	Workload string `json:"workload"`
	// Instance names a Table 1 instance (default CDB-A).
	Instance string `json:"instance,omitempty"`
	// Seed seeds the user instance's simulator (0 = derived).
	Seed int64 `json:"seed,omitempty"`
	// Timeline names a workload timeline to keep serving after the tune
	// ("" = Config.Timeline; "none" suppresses a config-level default).
	Timeline string `json:"timeline,omitempty"`
	// ServeHours bounds the dynamic window in simulated hours (0 =
	// Config.ServeHours, then one timeline cycle).
	ServeHours float64 `json:"serve_hours,omitempty"`
}

// JobStatus is a session's externally visible state.
type JobStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	IdemKey  string `json:"idem_key,omitempty"`
	Workload string `json:"workload"`
	Instance string `json:"instance"`
	State    string `json:"state"`

	// Path reports which serving path the session took: "warm" (a
	// registry model within MatchRadius seeded the agent, training was a
	// fine-tune) or "scratch".
	Path          string  `json:"path,omitempty"`
	MatchID       string  `json:"match_id,omitempty"`
	MatchDistance float64 `json:"match_distance,omitempty"`

	// Episodes is the training episodes this session ran; EpisodesSaved
	// how many the warm start avoided versus the matched model's recorded
	// from-scratch cost.
	Episodes      int `json:"episodes"`
	EpisodesSaved int `json:"episodes_saved"`

	// ModelID is the registry entry this session created or updated.
	ModelID string `json:"model_id,omitempty"`

	// Improvement is the deployed configuration's relative throughput gain
	// over the instance's defaults; Approved whether the license step
	// granted deployment.
	Improvement    float64 `json:"improvement"`
	Approved       bool    `json:"approved"`
	BestThroughput float64 `json:"best_throughput"`

	// Dynamic-serving counters, present when the session served a
	// workload timeline after tuning: drift detections, drift-triggered
	// re-tunes, and guardrail/crash reverts during the window.
	Timeline string `json:"timeline,omitempty"`
	Drifts   int    `json:"drifts,omitempty"`
	Retunes  int    `json:"retunes,omitempty"`
	Reverts  int    `json:"reverts,omitempty"`

	QueueWaitMs float64 `json:"queue_wait_ms"`
	Error       string  `json:"error,omitempty"`
}

// Event is one line of a session's progress stream.
type Event struct {
	Seq     int    `json:"seq"`
	UnixMs  int64  `json:"unix_ms"`
	Stage   string `json:"stage"`
	Message string `json:"message"`
}

// Metrics is the service-level snapshot behind GET /metrics.
type Metrics struct {
	Submitted int `json:"submitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Active    int `json:"active"`
	Queued    int `json:"queued"`

	WarmHits   int `json:"warm_hits"`
	WarmMisses int `json:"warm_misses"`

	EpisodesTrained int `json:"episodes_trained"`
	EpisodesSaved   int `json:"episodes_saved"`

	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95Ms float64 `json:"queue_wait_p95_ms"`

	// Submit-to-deploy latency over completed sessions: the queue SLO the
	// fleet harness asserts on.
	SubmitToDeployP50Ms float64 `json:"submit_to_deploy_p50_ms"`
	SubmitToDeployP99Ms float64 `json:"submit_to_deploy_p99_ms"`

	RegistryEntries int `json:"registry_entries"`
	RegistryCorrupt int `json:"registry_corrupt"`
}

// session is one tuning request moving through the pipeline.
type session struct {
	id     string
	tenant string
	req    JobRequest

	w        workload.Workload
	inst     simdb.Instance
	baseSeed int64

	submitted time.Time

	// Everything below is guarded by the manager's mutex.
	state         string
	path          string
	matchID       string
	matchDistance float64
	episodes      int
	episodesSaved int
	modelID       string
	improvement   float64
	approved      bool
	bestTput      float64
	timeline      string
	drifts        int
	retunes       int
	reverts       int
	queueWait     time.Duration
	errMsg        string
	events        []Event
	notify        chan struct{}
	cancel        context.CancelFunc
	canceled      bool
}

// Manager runs the multi-tenant serving pipeline: a bounded worker pool
// draining an admission queue of tuning sessions.
type Manager struct {
	cfg Config
	reg registry.Store

	queue chan *session
	wg    sync.WaitGroup

	rootCtx    context.Context
	rootCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	draining bool
	jobs     map[string]*session
	order    []string
	nextID   int
	active   int
	// inflight counts sessions admitted but not yet terminal. Unlike
	// active+len(queue) it has no blind spot: a session a worker has
	// dequeued but not yet started is still in flight, so Drain cannot
	// return while one is about to run.
	inflight int
	pending  map[string]int // tenant → queued + running jobs

	submitted, rejected, completed, failed, canceled int
	warmHits, warmMisses                             int
	episodesTrained, episodesSaved                   int
	waitsMs, deployMs                                []float64
}

// NewManager validates cfg, fills defaults and starts the worker pool.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		reg:        cfg.Registry,
		queue:      make(chan *session, cfg.QueueDepth),
		rootCtx:    ctx,
		rootCancel: cancel,
		jobs:       make(map[string]*session),
		pending:    make(map[string]int),
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Close cancels every running session, drains the pool and waits for it.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.rootCancel()
	close(m.queue)
	m.wg.Wait()
}

// Submit validates and enqueues a tuning request. It fails fast with
// ErrQueueFull when the admission queue is at capacity — backpressure
// instead of unbounded latency — and with a validation error for an
// unknown workload or instance.
func (m *Manager) Submit(req JobRequest) (JobStatus, error) {
	w, err := workload.ByName(req.Workload)
	if err != nil {
		return JobStatus{}, fmt.Errorf("server: %w", err)
	}
	inst := simdb.CDBA
	if req.Instance != "" {
		var ok bool
		if inst, ok = simdb.ByName(req.Instance); !ok {
			return JobStatus{}, fmt.Errorf("server: unknown instance %q", req.Instance)
		}
	}
	// Resolve the dynamic serving window up front so an unknown timeline
	// is rejected at submission, not hours into the session.
	tlName := req.Timeline
	if tlName == "" {
		tlName = m.cfg.Timeline
	}
	if tlName == "none" {
		tlName = ""
	}
	if tlName != "" {
		if _, err := workload.TimelineByName(tlName, w); err != nil {
			return JobStatus{}, fmt.Errorf("server: %w", err)
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, errors.New("server: manager closed")
	}
	if m.draining {
		m.rejected++
		m.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if m.cfg.MaxPerTenant > 0 && m.pending[req.Tenant] >= m.cfg.MaxPerTenant {
		m.rejected++
		m.mu.Unlock()
		return JobStatus{}, ErrTenantBusy
	}
	id := fmt.Sprintf("job-%04d", m.nextID)
	if m.cfg.IDPrefix != "" {
		id = m.cfg.IDPrefix + "-" + id
	}
	s := &session{
		id:        id,
		tenant:    req.Tenant,
		req:       req,
		w:         w,
		inst:      inst,
		baseSeed:  m.cfg.Seed + int64(m.nextID)*1_000_003,
		submitted: time.Now(),
		state:     StateQueued,
		timeline:  tlName,
		notify:    make(chan struct{}),
	}
	m.nextID++

	select {
	case m.queue <- s:
	default:
		m.rejected++
		m.mu.Unlock()
		return JobStatus{}, ErrQueueFull
	}
	m.submitted++
	m.inflight++
	m.pending[s.tenant]++
	m.jobs[s.id] = s
	m.order = append(m.order, s.id)
	m.eventLocked(s, "queued", "request queued (workload %s, instance %s)", w.Name, inst.Name)
	st := m.statusLocked(s)
	m.mu.Unlock()
	return st, nil
}

// Job returns one session's status.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return m.statusLocked(s), true
}

// Jobs returns every session's status in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

// Cancel stops a session: a queued session is skipped when a worker picks
// it up, a running one has its context cancelled (the controller rolls the
// instance back).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("server: no job %q", id)
	}
	switch s.state {
	case StateDone, StateFailed, StateCanceled:
		return fmt.Errorf("server: job %q already %s", id, s.state)
	}
	s.canceled = true
	if s.cancel != nil {
		s.cancel()
	}
	m.eventLocked(s, "cancel", "cancellation requested")
	return nil
}

// Events returns a session's progress events after the given sequence
// number, plus a channel closed on the next append — the long-poll surface
// behind the streaming endpoint.
func (m *Manager) Events(id string, after int) ([]Event, <-chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.jobs[id]
	if !ok {
		return nil, nil, false
	}
	var out []Event
	for _, e := range s.events {
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out, s.notify, true
}

// Metrics snapshots the service counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	p50, p95 := percentiles(m.waitsMs)
	return Metrics{
		Submitted: m.submitted, Rejected: m.rejected,
		Completed: m.completed, Failed: m.failed, Canceled: m.canceled,
		Active: m.active, Queued: len(m.queue),
		WarmHits: m.warmHits, WarmMisses: m.warmMisses,
		EpisodesTrained: m.episodesTrained, EpisodesSaved: m.episodesSaved,
		QueueWaitP50Ms: p50, QueueWaitP95Ms: p95,
		SubmitToDeployP50Ms: percentile(m.deployMs, 0.50),
		SubmitToDeployP99Ms: percentile(m.deployMs, 0.99),
		RegistryEntries:     m.reg.Len(), RegistryCorrupt: len(m.reg.Corrupt()),
	}
}

// Drain stops admitting new sessions (Submit returns ErrDraining) and
// waits for every queued and running session to reach a terminal state,
// or for ctx to expire. It does not cancel work — pair with Cancel or a
// deadline when sessions must be cut short.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		m.mu.Lock()
		idle := m.inflight == 0
		m.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has been called.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Workers reports the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Registry exposes the model collection behind the serving layer.
func (m *Manager) Registry() registry.Store { return m.reg }

func percentiles(samples []float64) (p50, p95 float64) {
	return percentile(samples, 0.50), percentile(samples, 0.95)
}

// percentile reports the q-quantile (nearest-rank on the sorted copy) of
// samples, 0 when empty.
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// statusLocked renders a session snapshot; callers hold m.mu.
func (m *Manager) statusLocked(s *session) JobStatus {
	return JobStatus{
		ID: s.id, Tenant: s.tenant, IdemKey: s.req.IdemKey,
		Workload: s.w.Name, Instance: s.inst.Name,
		State: s.state, Path: s.path,
		MatchID: s.matchID, MatchDistance: s.matchDistance,
		Episodes: s.episodes, EpisodesSaved: s.episodesSaved,
		ModelID: s.modelID, Improvement: s.improvement,
		Approved: s.approved, BestThroughput: s.bestTput,
		Timeline: s.timeline,
		Drifts:   s.drifts, Retunes: s.retunes, Reverts: s.reverts,
		QueueWaitMs: float64(s.queueWait) / float64(time.Millisecond),
		Error:       s.errMsg,
	}
}

// eventLocked appends a progress event and wakes streamers; callers hold
// m.mu.
func (m *Manager) eventLocked(s *session, stage, format string, args ...any) {
	e := Event{
		Seq:     len(s.events) + 1,
		UnixMs:  time.Now().UnixMilli(),
		Stage:   stage,
		Message: fmt.Sprintf(format, args...),
	}
	s.events = append(s.events, e)
	close(s.notify)
	s.notify = make(chan struct{})
	m.cfg.Logf("server: %s [%s] %s", s.id, stage, e.Message)
}

func (m *Manager) event(s *session, stage, format string, args ...any) {
	m.mu.Lock()
	m.eventLocked(s, stage, format, args...)
	m.mu.Unlock()
}

// worker drains the admission queue until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for s := range m.queue {
		m.run(s)
	}
}

// finish transitions a session to its terminal state, releases its
// tenant's admission slot and fires the terminal-status hook.
func (m *Manager) finish(s *session, state string, err error) {
	m.mu.Lock()
	s.state = state
	switch state {
	case StateDone:
		m.completed++
		// Submit-to-deploy latency: the full span the tenant waited for a
		// deployed configuration.
		m.deployMs = append(m.deployMs, float64(time.Since(s.submitted))/float64(time.Millisecond))
		if len(m.deployMs) > 512 {
			m.deployMs = m.deployMs[len(m.deployMs)-512:]
		}
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
	if err != nil {
		s.errMsg = err.Error()
		m.eventLocked(s, state, "%v", err)
	} else {
		m.eventLocked(s, state, "session %s", state)
	}
	m.active--
	m.inflight--
	m.releaseTenantLocked(s.tenant)
	st := m.statusLocked(s)
	done := m.cfg.OnJobDone
	m.mu.Unlock()
	if done != nil {
		done(st)
	}
}

// releaseTenantLocked frees one of a tenant's pending-job slots; callers
// hold m.mu.
func (m *Manager) releaseTenantLocked(tenant string) {
	if m.pending[tenant] <= 1 {
		delete(m.pending, tenant)
	} else {
		m.pending[tenant]--
	}
}

// run executes one session end to end: fingerprint, registry match, warm
// or scratch training, guarded online tuning, registry write-back.
func (m *Manager) run(s *session) {
	ctx, cancel := context.WithCancel(m.rootCtx)
	defer cancel()

	m.mu.Lock()
	if s.canceled || m.rootCtx.Err() != nil {
		s.state = StateCanceled
		m.canceled++
		m.inflight--
		m.eventLocked(s, StateCanceled, "canceled before start")
		m.releaseTenantLocked(s.tenant)
		st := m.statusLocked(s)
		done := m.cfg.OnJobDone
		m.mu.Unlock()
		if done != nil {
			done(st)
		}
		return
	}
	s.state = StateRunning
	s.cancel = cancel
	s.queueWait = time.Since(s.submitted)
	m.waitsMs = append(m.waitsMs, float64(s.queueWait)/float64(time.Millisecond))
	if len(m.waitsMs) > 256 {
		m.waitsMs = m.waitsMs[len(m.waitsMs)-256:]
	}
	m.active++
	m.eventLocked(s, "start", "session started after %.0f ms in queue", float64(s.queueWait)/float64(time.Millisecond))
	m.mu.Unlock()

	err := m.serve(ctx, s)
	switch {
	case err == nil:
		m.finish(s, StateDone, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		m.finish(s, StateCanceled, err)
	default:
		m.finish(s, StateFailed, err)
	}
}

func (m *Manager) serve(ctx context.Context, s *session) error {
	cfg := m.cfg

	// The user's instance. Its default-configuration measurement doubles
	// as the workload fingerprint (§5: match the new tuning request
	// against previously trained models).
	userSeed := s.req.Seed
	if userSeed == 0 {
		userSeed = s.baseSeed + 17
	}
	userDB := cfg.MakeDB(s.inst, userSeed)
	base, err := env.New(userDB, cfg.Catalog, s.w).Measure()
	if err != nil {
		return fmt.Errorf("fingerprinting %s on defaults: %w", s.w.Name, err)
	}
	fp := registry.Fingerprint(base.State, s.w, s.inst.HW)
	m.event(s, "fingerprint", "measured defaults: %.1f tx/s; fingerprint dim %d", base.Ext.Throughput, len(fp))

	tn, err := core.New(cfg.TunerConfig(cfg.Catalog))
	if err != nil {
		return fmt.Errorf("building session tuner: %w", err)
	}

	// Registry match: a close-enough model seeds the agent and training
	// becomes a fine-tune.
	warm := false
	var match registry.Match
	if mt, ok := m.reg.Nearest(fp); ok && mt.Distance <= cfg.MatchRadius {
		if lerr := tn.Load(bytes.NewReader(mt.Model)); lerr != nil {
			m.event(s, "match", "model %s matched (d=%.4f) but failed to load (%v); training from scratch", mt.Meta.ID, mt.Distance, lerr)
		} else {
			warm, match = true, mt
		}
	}
	m.mu.Lock()
	if warm {
		s.path, s.matchID, s.matchDistance = PathWarm, match.Meta.ID, match.Distance
		m.warmHits++
		m.eventLocked(s, "match", "warm start from %s (workload %s, d=%.4f, %d scratch episodes on record)",
			match.Meta.ID, match.Meta.Workload, match.Distance, match.Meta.ScratchEpisodes)
	} else {
		s.path = PathScratch
		m.warmMisses++
		m.eventLocked(s, "match", "no model within radius %.3f; training from scratch", cfg.MatchRadius)
	}
	m.mu.Unlock()

	episodes, err := m.train(ctx, s, tn, warm)
	m.mu.Lock()
	s.episodes = episodes
	m.episodesTrained += episodes
	if warm {
		if saved := match.Meta.ScratchEpisodes - episodes; saved > 0 {
			s.episodesSaved = saved
			m.episodesSaved += saved
		}
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	m.event(s, "train", "%s training converged after %d episodes", s.path, episodes)

	// Online tuning through the controller: capture, replay, recommend,
	// license, deploy-or-rollback — under the session guardrail.
	ctrl, err := controller.New(controller.Config{
		Tuner: tn, Seed: s.baseSeed,
		OnlineSteps: cfg.OnlineSteps,
		GuardK:      cfg.GuardK, GuardRadius: cfg.GuardRadius,
	})
	if err != nil {
		return err
	}
	res, err := ctrl.HandleTuningRequestCtx(ctx, userDB, s.w)
	if err != nil {
		return fmt.Errorf("tuning request: %w", err)
	}
	improvement := 0.0
	if res.Initial.Throughput > 0 {
		improvement = res.BestPerf.Throughput/res.Initial.Throughput - 1
	}
	m.mu.Lock()
	s.improvement = improvement
	s.approved = res.Approved
	s.bestTput = res.BestPerf.Throughput
	m.eventLocked(s, "tune", "online tuning: %.1f → %.1f tx/s (%+.1f%%), approved=%v",
		res.Initial.Throughput, res.BestPerf.Throughput, improvement*100, res.Approved)
	m.mu.Unlock()

	// Write the tuned model back: a warm session updates its matched entry
	// in place (version bump), a scratch session registers a new one.
	var buf bytes.Buffer
	if err := tn.Save(&buf); err != nil {
		return fmt.Errorf("serializing tuned model: %w", err)
	}
	meta := registry.Meta{
		Workload: s.w.Name, Instance: s.inst.Name, Fingerprint: fp,
		Episodes: episodes, BestThroughput: res.BestPerf.Throughput,
	}
	if warm {
		meta.ID = match.Meta.ID
		meta.Episodes = match.Meta.Episodes + episodes
		if match.Meta.BestThroughput > meta.BestThroughput {
			meta.BestThroughput = match.Meta.BestThroughput
		}
	} else {
		meta.ScratchEpisodes = episodes
	}
	stored, err := m.reg.Put(meta, buf.Bytes())
	if err != nil {
		return fmt.Errorf("registering tuned model: %w", err)
	}
	m.mu.Lock()
	s.modelID = stored.ID
	m.eventLocked(s, "registry", "model %s v%d stored (%d cumulative episodes)", stored.ID, stored.Version, stored.Episodes)
	m.mu.Unlock()

	if s.timeline == "" {
		return nil
	}
	return m.serveDynamic(ctx, s, tn, userDB, stored)
}

// serveDynamic keeps the tuned session alive under a time-varying
// workload: the drift detector watches the streaming fingerprint, each
// drift triggers an in-place guarded re-tune warm-seeded from the
// registry's nearest model (skipping the session's own entry), and every
// drift/re-tune/revert lands in the session's NDJSON event stream. The
// fine-tuned model is written back to the registry when the window ends.
func (m *Manager) serveDynamic(ctx context.Context, s *session, tn *core.Tuner, userDB env.Database, stored registry.Meta) error {
	cfg := m.cfg
	tl, err := workload.TimelineByName(s.timeline, s.w)
	if err != nil {
		return fmt.Errorf("dynamic window: %w", err)
	}
	if cfg.TimeScale > 0 {
		tl.TimeScale = cfg.TimeScale
	}
	e := env.New(userDB, cfg.Catalog, s.w)
	e.Timeline = tl
	hours := s.req.ServeHours
	if hours <= 0 {
		hours = cfg.ServeHours
	}
	m.event(s, "dynamic", "serving timeline %s for %.0fh (drift threshold %.3f)",
		tl.Name, nonZero(hours, tl.TotalHours()), nonZero(cfg.DriftThreshold, core.DefaultDriftThreshold))

	guardK, guardR := cfg.GuardK, cfg.GuardRadius
	if guardK <= 0 {
		guardK = 3
	}
	if guardR <= 0 {
		guardR = 0.05
	}
	rep, derr := tn.ServeDynamic(e, core.DynamicOptions{
		HorizonHours: hours,
		Drift:        core.DriftConfig{Threshold: cfg.DriftThreshold},
		Guard:        core.NewGuardrail(guardK, guardR),
		FineTune:     true,
		Ctx:          ctx,
		WarmSeed: func(state []float64, w workload.Workload) (string, bool) {
			fp := registry.Fingerprint(state, w, s.inst.HW)
			mt, ok := m.reg.NearestWithin(fp, cfg.MatchRadius)
			if !ok || mt.Meta.ID == stored.ID {
				// No model closer than the radius, or the nearest is this
				// session's own entry — keep re-tuning with the weights
				// already loaded.
				return "", false
			}
			if lerr := tn.Load(bytes.NewReader(mt.Model)); lerr != nil {
				m.event(s, "drift", "warm seed %s failed to load (%v); re-tuning in place", mt.Meta.ID, lerr)
				return "", false
			}
			return mt.Meta.ID, true
		},
		OnEvent: func(ev core.DynamicEvent) {
			m.mu.Lock()
			switch ev.Kind {
			case "drift":
				s.drifts++
			case "retune":
				s.retunes++
			case "revert":
				s.reverts++
			}
			m.eventLocked(s, ev.Kind, "%s", ev.String())
			m.mu.Unlock()
		},
	})
	// Partial accounting is valid even when the window errored; surface
	// it before deciding the session's fate.
	m.mu.Lock()
	if rep.Final.Throughput > s.bestTput {
		s.bestTput = rep.Final.Throughput
	}
	m.eventLocked(s, "dynamic", "window closed: %.1fh served, %d drifts, %d retunes, %d reverts, %d crashes, mean %.1f tx/s",
		rep.Hours, rep.Drifts, len(rep.Retunes), rep.Reverts, rep.Crashes, rep.MeanThroughput())
	m.mu.Unlock()
	if derr != nil {
		return fmt.Errorf("dynamic window: %w", derr)
	}

	// Registry fine-tune write-back: the drift re-tunes updated the
	// model; persist the new version in place.
	if len(rep.Retunes) > 0 {
		var buf bytes.Buffer
		if err := tn.Save(&buf); err != nil {
			return fmt.Errorf("serializing re-tuned model: %w", err)
		}
		meta := registry.Meta{
			ID: stored.ID, Workload: s.w.Name, Instance: s.inst.Name,
			Fingerprint: stored.Fingerprint,
			Episodes:    stored.Episodes + len(rep.Retunes),
		}
		meta.BestThroughput = stored.BestThroughput
		if rep.Final.Throughput > meta.BestThroughput {
			meta.BestThroughput = rep.Final.Throughput
		}
		upd, err := m.reg.Put(meta, buf.Bytes())
		if err != nil {
			return fmt.Errorf("re-registering fine-tuned model: %w", err)
		}
		m.event(s, "registry", "model %s v%d updated from %d drift re-tunes", upd.ID, upd.Version, len(rep.Retunes))
	}
	return nil
}

func nonZero(v, fallback float64) float64 {
	if v > 0 {
		return v
	}
	return fallback
}

// train runs chunked offline training until the greedy policy's probed
// throughput plateaus: after each chunk the current policy is probed with
// ProbeSteps greedy steps on a fresh instance (no exploration, nothing
// enters the replay memory), and training stops once the probe fails to
// beat the best probed throughput by more than ConvergeEps for Patience
// consecutive probes. A warm-started session is probed before any
// training, so an already-converged model stops after a single chunk;
// scratch training runs at least MinScratchEpisodes.
func (m *Manager) train(ctx context.Context, s *session, tn *core.Tuner, warm bool) (int, error) {
	cfg := m.cfg
	maxEp, minEp := cfg.MaxScratchEpisodes, cfg.MinScratchEpisodes
	if warm {
		maxEp, minEp = cfg.MaxFineTuneEpisodes, 0
	}

	episodes := 0
	best := 0.0
	if warm {
		if p, err := m.probe(ctx, s, tn, 0); err == nil {
			best = p
			m.event(s, "probe", "warm model probes at %.1f tx/s before fine-tuning", p)
		} else if ctx.Err() != nil {
			return 0, ctx.Err()
		}
	}

	flat := 0
	for episodes < maxEp {
		n := cfg.ChunkEpisodes
		if episodes+n > maxEp {
			n = maxEp - episodes
		}
		chunkBase := s.baseSeed + int64(episodes)*101
		mk := func(ep int) *env.Env {
			db := cfg.MakeDB(s.inst, chunkBase+int64(ep))
			return env.New(db, cfg.Catalog, s.w)
		}
		rep, err := tn.OfflineTrainOpts(mk, core.TrainOptions{
			Episodes: n, Workers: cfg.TrainWorkers, Ctx: ctx,
		})
		episodes += rep.Episodes
		if err != nil {
			return episodes, fmt.Errorf("training episode %d: %w", episodes, err)
		}

		p, perr := m.probe(ctx, s, tn, episodes)
		if perr != nil {
			if ctx.Err() != nil {
				return episodes, ctx.Err()
			}
			// A probe lost to environment faults neither stops nor extends
			// training; the next chunk's probe decides.
			m.event(s, "probe", "probe after episode %d failed (%v); continuing", episodes, perr)
			continue
		}
		m.event(s, "probe", "episode %d: greedy policy probes at %.1f tx/s (best %.1f)", episodes, p, best)
		if episodes >= minEp && best > 0 && p <= best*(1+cfg.ConvergeEps) {
			flat++
			if flat >= cfg.Patience {
				break
			}
		} else {
			flat = 0
		}
		if p > best {
			best = p
		}
	}
	return episodes, nil
}

// probe measures the current greedy policy on a fresh instance: reset to
// defaults, then ProbeSteps greedy actions, best throughput wins. Probe
// steps bypass the replay memory — they evaluate, never train.
func (m *Manager) probe(ctx context.Context, s *session, tn *core.Tuner, afterEpisodes int) (float64, error) {
	db := m.cfg.MakeDB(s.inst, s.baseSeed+9_000_000+int64(afterEpisodes))
	e := env.New(db, m.cfg.Catalog, s.w)
	e.Bind(ctx)
	defer e.Bind(nil)
	base, err := e.Measure()
	if err != nil {
		return 0, err
	}
	best := base.Ext.Throughput
	state := metrics.Normalize(base.State)
	for i := 0; i < m.cfg.ProbeSteps; i++ {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		res, err := e.Step(tn.Agent().Act(state))
		if err != nil {
			// Crashed or flaky probe instance: the probe reports what it
			// saw; recovery is the trainer's business, not the prober's.
			break
		}
		state = metrics.Normalize(res.State)
		if res.Ext.Throughput > best {
			best = res.Ext.Throughput
		}
	}
	return best, nil
}

// SessionStats is the per-session telemetry row behind the expdriver
// serving table.
type SessionStats struct {
	ID            string
	Workload      string
	Instance      string
	State         string
	Path          string
	QueueWaitMs   float64
	MatchDistance float64
	Episodes      int
	EpisodesSaved int
	Improvement   float64
}

// Sessions snapshots per-session telemetry in submission order.
func (m *Manager) Sessions() []SessionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SessionStats, 0, len(m.order))
	for _, id := range m.order {
		s := m.jobs[id]
		out = append(out, SessionStats{
			ID: s.id, Workload: s.w.Name, Instance: s.inst.Name,
			State: s.state, Path: s.path,
			QueueWaitMs:   float64(s.queueWait) / float64(time.Millisecond),
			MatchDistance: s.matchDistance,
			Episodes:      s.episodes, EpisodesSaved: s.episodesSaved,
			Improvement: s.improvement,
		})
	}
	return out
}
