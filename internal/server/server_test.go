package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/registry"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
)

// testConfig builds a fast serving configuration: a small knob subset, a
// tiny network, short episodes — the controller-test pattern sized for a
// full warm-vs-scratch comparison in seconds.
func testConfig(t *testing.T) Config {
	t.Helper()
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 8)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)
	reg, err := registry.Open(t.TempDir(), registry.WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Registry:            reg,
		Workers:             2,
		OnlineSteps:         3,
		MinScratchEpisodes:  4,
		MaxScratchEpisodes:  6,
		MaxFineTuneEpisodes: 2,
		ChunkEpisodes:       2,
		ProbeSteps:          2,
		MatchRadius:         0.25,
		Seed:                11,
		Catalog:             cat,
		TunerConfig: func(cat *knobs.Catalog) core.Config {
			cfg := core.DefaultConfig(cat)
			d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
			d.ActorHidden = []int{24, 24}
			d.CriticHidden = []int{32, 24}
			cfg.DDPG = d
			cfg.StepsPerEpisode = 6
			cfg.UpdatesPerStep = 1
			return cfg
		},
		Logf: t.Logf,
	}
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, "http://" + addr
}

func postJob(t *testing.T, base, workload string) (JobStatus, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(JobRequest{Workload: workload, Instance: "CDB-A"})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp
}

func waitJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestServeSmoke is the end-to-end serving test: a first tuning request
// trains from scratch and registers its model; a second request for the
// same workload must match that model, take the warm-start path, and
// converge in fewer episodes than the first.
func TestServeSmoke(t *testing.T) {
	_, base := startServer(t, testConfig(t))

	// Request 1: empty registry, so this must be a scratch session.
	st1, resp1 := postJob(t, base, "sysbench-rw")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp1.StatusCode)
	}
	st1 = waitJob(t, base, st1.ID)
	if st1.State != StateDone {
		t.Fatalf("job 1: %s (%s)", st1.State, st1.Error)
	}
	if st1.Path != PathScratch {
		t.Fatalf("job 1 path = %q, want scratch", st1.Path)
	}
	if st1.ModelID == "" || st1.Episodes < 4 {
		t.Fatalf("job 1 must register a model after ≥4 episodes: %+v", st1)
	}

	// The registry now holds exactly the scratch model.
	var models struct {
		Models  []registry.Meta   `json:"models"`
		Corrupt map[string]string `json:"corrupt"`
	}
	getJSON(t, base+"/api/v1/models", &models)
	if len(models.Models) != 1 || models.Models[0].ID != st1.ModelID {
		t.Fatalf("registry after job 1: %+v", models.Models)
	}
	if models.Models[0].ScratchEpisodes != st1.Episodes {
		t.Fatalf("scratch cost not recorded: %+v", models.Models[0])
	}

	// Request 2, same workload: must take the warm-start path and converge
	// in fewer episodes than the scratch session.
	st2, _ := postJob(t, base, "sysbench-rw")
	st2 = waitJob(t, base, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("job 2: %s (%s)", st2.State, st2.Error)
	}
	if st2.Path != PathWarm {
		t.Fatalf("job 2 path = %q, want warm (distance %v)", st2.Path, st2.MatchDistance)
	}
	if st2.MatchID != st1.ModelID {
		t.Fatalf("job 2 matched %q, want %q", st2.MatchID, st1.ModelID)
	}
	if st2.Episodes >= st1.Episodes {
		t.Fatalf("warm start must converge in fewer episodes: warm %d vs scratch %d", st2.Episodes, st1.Episodes)
	}
	if st2.EpisodesSaved != st1.Episodes-st2.Episodes {
		t.Fatalf("episodes saved = %d, want %d", st2.EpisodesSaved, st1.Episodes-st2.Episodes)
	}

	// The fine-tune updated the entry in place: one entry, version 2.
	getJSON(t, base+"/api/v1/models", &models)
	if len(models.Models) != 1 {
		t.Fatalf("fine-tune duplicated the model: %+v", models.Models)
	}
	if m := models.Models[0]; m.Version != 2 || m.Episodes != st1.Episodes+st2.Episodes {
		t.Fatalf("fine-tune write-back wrong: %+v", m)
	}

	// Service metrics reflect both paths.
	var mt Metrics
	getJSON(t, base+"/metrics.json", &mt)
	if mt.WarmHits != 1 || mt.WarmMisses != 1 || mt.Completed != 2 {
		t.Fatalf("metrics: %+v", mt)
	}
	if mt.EpisodesSaved != st2.EpisodesSaved {
		t.Fatalf("metrics episodes_saved = %d, want %d", mt.EpisodesSaved, st2.EpisodesSaved)
	}

	// The event stream ends with the terminal status.
	resp, err := http.Get(base + "/api/v1/jobs/" + st2.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, stage := range []string{`"queued"`, `"match"`, `"tune"`, `"final":true`} {
		if !strings.Contains(string(stream), stage) {
			t.Fatalf("event stream missing %s:\n%s", stage, stream)
		}
	}

	// Health endpoint answers.
	var health map[string]any
	getJSON(t, base+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure429 pins the admission-control contract: with one busy
// worker and a one-deep queue, an extra submission is rejected with 429
// and a Retry-After hint instead of queueing unboundedly.
func TestBackpressure429(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 1
	block := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(block)
		}
	}()
	inner := cfg.MakeDB
	if inner == nil {
		inner = func(inst simdb.Instance, seed int64) env.Database {
			return simdb.New(knobs.EngineCDB, inst, seed)
		}
	}
	cfg.MakeDB = func(inst simdb.Instance, seed int64) env.Database {
		<-block // hold every session at its first instance build
		return inner(inst, seed)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func() *http.Response {
		body, _ := json.Marshal(JobRequest{Workload: "sysbench-ro"})
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Job 1 is picked up by the lone worker (and blocks); give the pickup
	// a moment so job 2 lands in the queue, not the worker.
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d", resp.StatusCode)
	}
	waitFor(t, func() bool { return m.Metrics().Active == 1 })
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d", resp.StatusCode)
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if m.Metrics().Rejected != 1 {
		t.Fatalf("rejected = %d", m.Metrics().Rejected)
	}

	// A bad workload is a 400, not a queue rejection.
	body, _ := json.Marshal(JobRequest{Workload: "no-such-workload"})
	bad, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload = %d, want 400", bad.StatusCode)
	}

	// Unblock and shut down: Close cancels the sessions' contexts, so the
	// held jobs drain without running their full pipelines.
	released = true
	close(block)
	srv.Close()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestCancelRunningJob verifies cancellation reaches a running session's
// context: the job ends canceled, not done.
func TestCancelRunningJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	// A long scratch run leaves plenty of time to cancel mid-training.
	cfg.MinScratchEpisodes = 40
	cfg.MaxScratchEpisodes = 40
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body, _ := json.Marshal(JobRequest{Workload: "tpcc"})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitFor(t, func() bool {
		got, _ := m.Job(st.ID)
		return got.State == StateRunning
	})
	cresp, err := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", cresp.StatusCode)
	}

	waitFor(t, func() bool {
		got, _ := m.Job(st.ID)
		return got.State == StateCanceled
	})
	// Cancelling a finished job conflicts.
	cresp2, _ := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	cresp2.Body.Close()
	if cresp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel = %d, want 409", cresp2.StatusCode)
	}
	if m.Metrics().Canceled != 1 {
		t.Fatalf("canceled = %d", m.Metrics().Canceled)
	}
}

// TestManagerValidation pins Submit's input validation and NewManager's
// required fields.
func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("missing registry must error")
	}
	cfg := testConfig(t)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Submit(JobRequest{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
	if _, err := m.Submit(JobRequest{Workload: "tpcc", Instance: "CDB-Z"}); err == nil {
		t.Fatal("unknown instance must be rejected")
	}
	if err := m.Cancel("job-9999"); err == nil {
		t.Fatal("cancel of unknown job must error")
	}
	if _, ok := m.Job("job-9999"); ok {
		t.Fatal("unknown job must not resolve")
	}
}

// TestDynamicServingJob submits a job with a timeline: after the tune the
// session must serve the flash-crowd window, detect at least one drift,
// re-tune in place, and surface the counters in both the job status and
// the NDJSON event stream.
func TestDynamicServingJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	_, base := startServer(t, cfg)

	body, _ := json.Marshal(JobRequest{
		Workload: "sysbench-rw", Instance: "CDB-A",
		Timeline: "flashcrowd", ServeHours: 6,
	})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	final := waitJob(t, base, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}
	if final.Timeline != "flashcrowd" {
		t.Errorf("status timeline = %q", final.Timeline)
	}
	if final.Drifts < 1 || final.Retunes < 1 {
		t.Fatalf("drifts %d, retunes %d — want ≥ 1 each", final.Drifts, final.Retunes)
	}

	// The event stream carries the drift/retune stages.
	eresp, err := http.Get(base + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	data, err := io.ReadAll(eresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	stages := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		stages[ev.Stage]++
	}
	for _, want := range []string{"dynamic", "drift", "retune"} {
		if stages[want] == 0 {
			t.Errorf("event stream has no %q stage (got %v)", want, stages)
		}
	}
}

// TestSubmitRejectsUnknownTimeline pins the fail-fast validation.
func TestSubmitRejectsUnknownTimeline(t *testing.T) {
	cfg := testConfig(t)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Submit(JobRequest{Workload: "sysbench-rw", Timeline: "bogus"}); err == nil {
		t.Fatal("unknown timeline accepted at submit")
	}
	// "none" suppresses a config-level default timeline.
	cfg2 := testConfig(t)
	cfg2.Timeline = "flashcrowd"
	m2, err := NewManager(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st, err := m2.Submit(JobRequest{Workload: "sysbench-rw", Timeline: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Timeline != "" {
		t.Fatalf("timeline = %q, want suppressed", st.Timeline)
	}
}
