package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
)

// blockingConfig holds every session at its first instance build until
// the returned release func is called — the pattern TestBackpressure429
// uses, shared here for the admission tests.
func blockingConfig(t *testing.T) (Config, func()) {
	t.Helper()
	cfg := testConfig(t)
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	t.Cleanup(release)
	inner := cfg.MakeDB
	if inner == nil {
		inner = func(inst simdb.Instance, seed int64) env.Database {
			return simdb.New(knobs.EngineCDB, inst, seed)
		}
	}
	cfg.MakeDB = func(inst simdb.Instance, seed int64) env.Database {
		<-block
		return inner(inst, seed)
	}
	return cfg, release
}

// TestTenantAdmissionCap pins per-tenant admission control: with
// MaxPerTenant=1 a tenant's second submission is rejected with
// ErrTenantBusy (HTTP 429 + Retry-After) while another tenant is still
// admitted, and finishing the first job frees the slot.
func TestTenantAdmissionCap(t *testing.T) {
	cfg, release := blockingConfig(t)
	cfg.Workers = 2
	cfg.QueueDepth = 8
	cfg.MaxPerTenant = 1
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	submit := func(tenant string) *http.Response {
		body, _ := json.Marshal(JobRequest{Tenant: tenant, Workload: "sysbench-ro"})
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := submit("acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("acme job 1: %d", resp.StatusCode)
	}
	resp := submit("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("acme job 2 = %d, want 429 (tenant cap)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant-cap 429 must carry Retry-After")
	}
	// Another tenant is not starved by acme's cap.
	if resp := submit("globex"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("globex job: %d", resp.StatusCode)
	}
	if _, err := m.Submit(JobRequest{Tenant: "acme", Workload: "sysbench-ro"}); err != ErrTenantBusy {
		t.Fatalf("Submit err = %v, want ErrTenantBusy", err)
	}

	// Finishing acme's job frees the slot.
	release()
	waitFor(t, func() bool { return m.Metrics().Completed >= 2 })
	if resp := submit("acme"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("acme after release: %d", resp.StatusCode)
	}
}

// TestDrainRejectsNewWork pins the drain contract: after Drain starts,
// Submit fails with ErrDraining and the HTTP layer answers 503; an idle
// manager drains immediately.
func TestDrainRejectsNewWork(t *testing.T) {
	cfg := testConfig(t)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewServer(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if _, err := m.Submit(JobRequest{Workload: "sysbench-ro"}); err != ErrDraining {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}
	body, _ := json.Marshal(JobRequest{Workload: "sysbench-ro"})
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
}

// TestGracefulCloseFinishesRunningJob pins the Server.Close satellite: a
// session running when Close is called finishes (done, not canceled)
// because Close drains before stopping the worker pool.
func TestGracefulCloseFinishesRunningJob(t *testing.T) {
	cfg, release := blockingConfig(t)
	cfg.Workers = 1
	var doneMu sync.Mutex
	var finals []JobStatus
	cfg.OnJobDone = func(st JobStatus) {
		doneMu.Lock()
		finals = append(finals, st)
		doneMu.Unlock()
	}
	cfg.IDPrefix = "n1"
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	srv.SetDrainTimeout(2 * time.Minute)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	body, _ := json.Marshal(JobRequest{Tenant: "acme", Workload: "sysbench-ro"})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.HasPrefix(st.ID, "n1-") {
		t.Fatalf("job ID %q missing node prefix", st.ID)
	}
	// The session is parked in MakeDB by the blocking gate, so observing
	// the running state is deterministic; Close starts draining while the
	// job is provably still in flight, and only then is the gate opened.
	waitFor(t, func() bool {
		got, _ := m.Job(st.ID)
		return got.State == StateRunning
	})
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.Close() }()
	waitFor(t, m.Draining)
	release()
	if err := <-closeErr; err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	got, _ := m.Job(st.ID)
	if got.State != StateDone {
		t.Fatalf("job after graceful close = %s (%s), want done", got.State, got.Error)
	}
	doneMu.Lock()
	defer doneMu.Unlock()
	if len(finals) != 1 || finals[0].ID != st.ID || finals[0].State != StateDone || finals[0].Tenant != "acme" {
		t.Fatalf("OnJobDone saw %+v", finals)
	}
	if mt := m.Metrics(); mt.SubmitToDeployP50Ms <= 0 || mt.SubmitToDeployP99Ms < mt.SubmitToDeployP50Ms {
		t.Fatalf("submit-to-deploy quantiles: %+v", mt)
	}
}

// TestRetryAfterJitter pins the jitter satellite: hints stay inside
// [RetryAfterSec, RetryAfterSec+RetryAfterJitterSec] and are not all the
// same value.
func TestRetryAfterJitter(t *testing.T) {
	cfg := testConfig(t)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewServer(m)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := srv.retryAfter()
		if v < RetryAfterSec || v > RetryAfterSec+RetryAfterJitterSec {
			t.Fatalf("retry-after %d outside [%d, %d]", v, RetryAfterSec, RetryAfterSec+RetryAfterJitterSec)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 draws produced a single hint %v — jitter is not applied", seen)
	}
}

// TestPromMetricsEndpoint pins the Prometheus exposition: GET /metrics is
// text-format with HELP/TYPE headers and the SetPromExtra hook's samples,
// while GET /metrics.json still serves the JSON snapshot.
func TestPromMetricsEndpoint(t *testing.T) {
	cfg := testConfig(t)
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := NewServer(m)
	srv.SetPromExtra(func() []PromMetric {
		return []PromMetric{{
			Name: "cdbtune_fleet_failovers_total", Help: "Lease steals from dead peers.",
			Type: "counter", Labels: map[string]string{"node": "n1"}, Value: 3,
		}}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	for _, want := range []string{
		"# TYPE cdbtune_queue_depth gauge",
		"# TYPE cdbtune_jobs_submitted_total counter",
		"cdbtune_submit_to_deploy_ms{quantile=\"0.99\"}",
		"cdbtune_fleet_failovers_total{node=\"n1\"} 3",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	var mt Metrics
	getJSON(t, ts.URL+"/metrics.json", &mt)
	if mt.Submitted != 0 || mt.RegistryEntries != 0 {
		t.Fatalf("fresh metrics.json: %+v", mt)
	}
}

// TestDrainWaitsForInFlightSessions pins the drain/worker handoff fix: a
// session a worker has dequeued but not yet marked active is invisible to
// active+len(queue), so Drain now tracks admitted-but-not-terminal work
// and must not return while any of it is pending.
func TestDrainWaitsForInFlightSessions(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3; i++ {
		if _, err := m.Submit(JobRequest{Workload: "sysbench-ro"}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, st := range m.Jobs() {
		if st.State != StateDone {
			t.Fatalf("job %s is %q after Drain returned, want done", st.ID, st.State)
		}
	}
}
