package mat

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dist2 length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Stddev returns the population standard deviation of v.
func Stddev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArgMax returns the index of the largest element of v, or -1 if empty.
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Standardize returns (v − mean)/std per element; if std is 0 the element
// becomes 0. mean and std must have the same length as v.
func Standardize(v, mean, std []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		if std[i] > 0 {
			out[i] = (v[i] - mean[i]) / std[i]
		}
	}
	return out
}
