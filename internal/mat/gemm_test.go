package mat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// naiveMulT and naiveTMul are the dense reference kernels the blocked
// implementations are verified against (naiveMul lives in
// unroll_test.go).
func naiveMulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveTMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matsClose(t *testing.T, name string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		g, w := got.Data[i], want.Data[i]
		if math.IsNaN(w) {
			if !math.IsNaN(g) {
				t.Fatalf("%s[%d] = %v, want NaN", name, i, g)
			}
			continue
		}
		if math.Abs(g-w) > tol*math.Max(1, math.Abs(w)) {
			t.Fatalf("%s[%d] = %v, want %v (tol %v)", name, i, g, w, tol)
		}
	}
}

// TestGEMMEquivalenceFuzz sweeps random shapes — including 1-row/1-col
// and non-multiple-of-4 extents that exercise every blocked remainder
// path — and checks the fused kernels against the naive references
// within 1e-12 relative error.
func TestGEMMEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := [][3]int{{1, 1, 1}, {1, 4, 1}, {4, 1, 4}, {3, 5, 7}, {4, 4, 4}, {5, 8, 13}, {1, 17, 9}, {16, 16, 16}, {7, 33, 2}}
	for trial := 0; trial < 40; trial++ {
		var m, k, n int
		if trial < len(shapes) {
			m, k, n = shapes[trial][0], shapes[trial][1], shapes[trial][2]
		} else {
			m, k, n = 1+rng.Intn(33), 1+rng.Intn(33), 1+rng.Intn(33)
		}
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		matsClose(t, "Mul", Mul(New(m, n), a, b), naiveMul(a, b), 1e-12)

		bt := randMat(rng, n, k)
		matsClose(t, "MulT", MulT(New(m, n), a, bt), naiveMulT(a, bt), 1e-12)

		ta, tb := randMat(rng, k, m), randMat(rng, k, n)
		matsClose(t, "TMul", TMul(New(m, n), ta, tb), naiveTMul(ta, tb), 1e-12)

		acc := randMat(rng, m, n)
		want := naiveTMul(ta, tb)
		for i := range want.Data {
			want.Data[i] += acc.Data[i]
		}
		matsClose(t, "TMulAdd", TMulAdd(acc, ta, tb), want, 1e-12)
	}
}

// TestParallelGEMMBitIdentical forces the goroutine row-partitioned
// path and requires results bit-for-bit equal to the serial kernel:
// every destination row is produced by one worker running the same
// serial code, so no summation-order drift is tolerated.
func TestParallelGEMMBitIdentical(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	prevFlops := gemmMinParallelFlops
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		gemmMinParallelFlops = prevFlops
	}()

	rng := rand.New(rand.NewSource(5))
	for _, sh := range [][3]int{{2, 3, 4}, {5, 16, 9}, {64, 63, 128}, {7, 1, 1}, {31, 8, 33}} {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		bt := randMat(rng, n, k)
		ta, tb := randMat(rng, k, m), randMat(rng, k, n)

		gemmMinParallelFlops = 1 << 62 // serial
		serialMul := Mul(New(m, n), a, b)
		serialMulT := MulT(New(m, n), a, bt)
		serialTMul := TMul(New(m, n), ta, tb)

		gemmMinParallelFlops = 0 // parallel for any size
		parMul := Mul(New(m, n), a, b)
		parMulT := MulT(New(m, n), a, bt)
		parTMul := TMul(New(m, n), ta, tb)

		for i := range serialMul.Data {
			if parMul.Data[i] != serialMul.Data[i] {
				t.Fatalf("%dx%dx%d Mul: parallel diverges from serial at %d", m, k, n, i)
			}
			if parMulT.Data[i] != serialMulT.Data[i] {
				t.Fatalf("%dx%dx%d MulT: parallel diverges from serial at %d", m, k, n, i)
			}
			if parTMul.Data[i] != serialTMul.Data[i] {
				t.Fatalf("%dx%dx%d TMul: parallel diverges from serial at %d", m, k, n, i)
			}
		}
	}
}

// TestNaNPropagatesThroughZeroCoefficient is the regression test for
// the sparsity short-circuit bug: a zero coefficient in one operand
// must not swallow a NaN (or Inf) in the other — 0·NaN is NaN, and the
// learner's NaN-batch skip depends on seeing it.
func TestNaNPropagatesThroughZeroCoefficient(t *testing.T) {
	nan := math.NaN()

	// Mul: a[0][1] = 0 pairs with b's NaN row 1.
	a := FromSlice(1, 2, []float64{1, 0})
	b := FromSlice(2, 2, []float64{1, 2, nan, nan})
	got := Mul(New(1, 2), a, b)
	for j, v := range got.Data {
		if !math.IsNaN(v) {
			t.Fatalf("Mul: zero coefficient swallowed NaN: dst[%d] = %v", j, v)
		}
	}

	// TMul: a's zero column entry pairs with b's NaN row.
	ta := FromSlice(2, 1, []float64{1, 0})
	tb := FromSlice(2, 2, []float64{3, 4, nan, nan})
	got = TMul(New(1, 2), ta, tb)
	for j, v := range got.Data {
		if !math.IsNaN(v) {
			t.Fatalf("TMul: zero coefficient swallowed NaN: dst[%d] = %v", j, v)
		}
	}

	// MulT: zero in a against NaN in the matching position of b's row.
	ma := FromSlice(1, 2, []float64{0, 1})
	mb := FromSlice(1, 2, []float64{nan, 5})
	got = MulT(New(1, 1), ma, mb)
	if !math.IsNaN(got.Data[0]) {
		t.Fatalf("MulT: zero coefficient swallowed NaN: got %v", got.Data[0])
	}

	// Inf must survive the same way (0·Inf is also NaN).
	ia := FromSlice(1, 2, []float64{0, 2})
	ib := FromSlice(2, 1, []float64{math.Inf(1), 3})
	if v := Mul(New(1, 1), ia, ib).Data[0]; !math.IsNaN(v) {
		t.Fatalf("Mul: 0·Inf = %v, want NaN", v)
	}
}

// TestReuseRecyclesStorage pins the pooling contract: a large-enough
// buffer is reshaped in place with zero allocations, a too-small one is
// replaced.
func TestReuseRecyclesStorage(t *testing.T) {
	m := New(8, 8)
	data := &m.Data[0]
	r := Reuse(m, 4, 6)
	if r != m || &r.Data[0] != data {
		t.Fatal("Reuse reallocated a sufficient buffer")
	}
	if r.Rows != 4 || r.Cols != 6 || len(r.Data) != 24 {
		t.Fatalf("Reuse shape = %dx%d len %d", r.Rows, r.Cols, len(r.Data))
	}
	if g := Reuse(m, 9, 9); g == m {
		t.Fatal("Reuse kept an undersized buffer")
	}
	if g := Reuse(nil, 2, 2); g == nil || len(g.Data) != 4 {
		t.Fatal("Reuse(nil) must allocate")
	}
	allocs := testing.AllocsPerRun(100, func() {
		m = Reuse(m, 8, 8)
		m = Reuse(m, 3, 5)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reuse allocates %v times", allocs)
	}
	if v := ReuseVec(nil, 3); len(v) != 3 {
		t.Fatal("ReuseVec(nil) must allocate")
	}
	v := make([]float64, 10)
	if got := ReuseVec(v, 4); len(got) != 4 || &got[0] != &v[0] {
		t.Fatal("ReuseVec reallocated a sufficient buffer")
	}
}
