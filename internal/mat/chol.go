package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix a such that a = L·Lᵀ. Only the lower triangle of a is
// read. It returns ErrNotPositiveDefinite if a pivot is non-positive.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			lrow := l.Row(i)
			jrow := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= lrow[k] * jrow[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/jrow[j])
			}
		}
	}
	return l, nil
}

// CholSolve solves a·x = b given the Cholesky factor l of a (a = L·Lᵀ),
// returning x. b is not modified.
func CholSolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("mat: CholSolve dimension mismatch")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// CholForward solves L·y = b by forward substitution, returning y.
func CholForward(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			sum -= row[k] * y[k]
		}
		y[i] = sum / row[i]
	}
	return y
}

// CholLogDet returns log|A| given the Cholesky factor L of A.
func CholLogDet(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
