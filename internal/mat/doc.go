// Package mat provides the small dense linear-algebra kernels used by
// the neural-network and Gaussian-process packages: row-major float64
// matrices with the handful of operations the rest of the system needs.
//
// # Kernel contract
//
// The GEMM entry points (Mul, MulT, TMul, TMulAdd) are the training and
// inference hot path and are written for throughput: k-fused blocked
// inner kernels (four terms per pass over the destination row) with a
// goroutine-parallel row-partitioned variant that engages automatically
// when the kernel exceeds gemmMinParallelFlops of work and GOMAXPROCS
// permits. The parallel split assigns every destination row to exactly
// one worker running the identical serial kernel, so parallel results
// are bit-for-bit identical to serial ones at any worker count; the
// blocked kernels themselves may differ from a textbook triple loop
// only by floating-point summation order (bounded by the usual ~1e-12
// relative error at these operand scales, and covered by the
// serial-equivalence tests).
//
// The kernels preserve full IEEE semantics: every product a[i][k]·b[k][j]
// is evaluated, with no sparsity short-circuits, so NaN and Inf values
// propagate through matmuls even when the opposite coefficient is zero.
// The DDPG learner's NaN-batch skip and the learner-health Supervisor
// depend on this guarantee.
//
// # Aliasing and concurrency
//
// GEMM destinations must not alias their operands. Elementwise
// operations (Add, Sub, Hadamard, Scale, ...) may alias freely. Matrix
// values have no internal synchronization: concurrent reads are safe,
// and concurrent GEMM calls are safe when their destinations do not
// overlap (the parallel variant relies on exactly this).
//
// # Buffer reuse
//
// Reuse and ReuseVec recycle backing storage across calls and are the
// pooling primitive behind the nn package's per-layer scratch caches.
// Both return storage with unspecified contents; callers own the
// returned buffer until they next pass it back.
package mat
