package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. The caller must not reuse data elsewhere.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Reuse returns a rows×cols matrix recycling m's backing storage when
// it is large enough, allocating a replacement otherwise. It is the
// buffer-pooling primitive behind the nn layers' scratch caches: a
// layer keeps its output (or gradient) buffer across calls and reshapes
// it per batch, so the steady state allocates nothing. The returned
// matrix's contents are unspecified — callers must fully overwrite it.
// Passing nil m always allocates.
func Reuse(m *Matrix, rows, cols int) *Matrix {
	if m != nil && cap(m.Data) >= rows*cols {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:rows*cols]
		return m
	}
	return New(rows, cols)
}

// ReuseVec returns a length-n float64 slice recycling v's storage when
// possible. Contents are unspecified; callers must overwrite.
func ReuseVec(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}

// Add computes dst = a + b elementwise. All three may alias.
func Add(dst, a, b *Matrix) *Matrix {
	checkSame("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub computes dst = a − b elementwise.
func Sub(dst, a, b *Matrix) *Matrix {
	checkSame("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Hadamard computes dst = a ⊙ b (elementwise product).
func Hadamard(dst, a, b *Matrix) *Matrix {
	checkSame("Hadamard", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled performs m += s·other in place (axpy).
func (m *Matrix) AddScaled(s float64, other *Matrix) *Matrix {
	checkSame("AddScaled", m, other, other)
	for i := range m.Data {
		m.Data[i] += s * other.Data[i]
	}
	return m
}

// Apply replaces every element x of m with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// AddRowVector adds the 1×Cols vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return m
}

// ColSums returns the per-column sums of m.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	m.AddColSums(sums)
	return sums
}

// AddColSums accumulates the per-column sums of m into dst (length
// Cols) without allocating — the form Dense.Backward uses to fold the
// bias gradient straight into its gradient tensor.
func (m *Matrix) AddColSums(dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: AddColSums length %d != cols %d", len(dst), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// ColMeansInto overwrites dst (length Cols) with the per-column means
// of m without allocating.
func (m *Matrix) ColMeansInto(dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: ColMeansInto length %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	m.AddColSums(dst)
	inv := 1.0 / float64(m.Rows)
	for j := range dst {
		dst[j] *= inv
	}
}

// ColMeans returns the per-column means of m.
func (m *Matrix) ColMeans() []float64 {
	sums := m.ColSums()
	inv := 1.0 / float64(m.Rows)
	for j := range sums {
		sums[j] *= inv
	}
	return sums
}

// MaxAbs returns the largest absolute value in m.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSame(op string, ms ...*Matrix) {
	r, c := ms[0].Rows, ms[0].Cols
	for _, m := range ms[1:] {
		if m.Rows != r || m.Cols != c {
			panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, r, c, m.Rows, m.Cols))
		}
	}
}
