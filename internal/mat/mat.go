// Package mat provides the small dense linear-algebra kernels used by the
// neural-network and Gaussian-process packages. It is deliberately minimal:
// row-major float64 matrices with the handful of operations the rest of the
// system needs, written for clarity first and cache behaviour second.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. The caller must not reuse data elsewhere.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set writes the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Mul computes dst = a × b. dst must be a.Rows×b.Cols and must not alias a
// or b. It returns dst for chaining.
func Mul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			axpyUnrolled(drow, b.Row(k), aik)
		}
	}
	return dst
}

// axpyUnrolled computes dst += s·src with 4-way unrolling; the slice
// re-bound eliminates bounds checks in the hot loop.
func axpyUnrolled(dst, src []float64, s float64) {
	n := len(dst)
	src = src[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		dst[j] += s * src[j]
		dst[j+1] += s * src[j+1]
		dst[j+2] += s * src[j+2]
		dst[j+3] += s * src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += s * src[j]
	}
}

// MulT computes dst = a × bᵀ. dst must be a.Rows×b.Rows.
func MulT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT shape mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulT dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = dotUnrolled(arow, b.Row(j))
		}
	}
	return dst
}

// dotUnrolled is an unrolled inner product for the hot paths.
func dotUnrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+3 < n; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	s := s0 + s1 + s2 + s3
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// TMul computes dst = aᵀ × b. dst must be a.Cols×b.Cols.
func TMul(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul shape mismatch (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: TMul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			axpyUnrolled(dst.Row(i), brow, aki)
		}
	}
	return dst
}

// Add computes dst = a + b elementwise. All three may alias.
func Add(dst, a, b *Matrix) *Matrix {
	checkSame("Add", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub computes dst = a − b elementwise.
func Sub(dst, a, b *Matrix) *Matrix {
	checkSame("Sub", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Hadamard computes dst = a ⊙ b (elementwise product).
func Hadamard(dst, a, b *Matrix) *Matrix {
	checkSame("Hadamard", dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScaled performs m += s·other in place (axpy).
func (m *Matrix) AddScaled(s float64, other *Matrix) *Matrix {
	checkSame("AddScaled", m, other, other)
	for i := range m.Data {
		m.Data[i] += s * other.Data[i]
	}
	return m
}

// Apply replaces every element x of m with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// AddRowVector adds the 1×Cols vector v to every row of m in place.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector length %d != cols %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
	return m
}

// ColSums returns the per-column sums of m.
func (m *Matrix) ColSums() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// ColMeans returns the per-column means of m.
func (m *Matrix) ColMeans() []float64 {
	sums := m.ColSums()
	inv := 1.0 / float64(m.Rows)
	for j := range sums {
		sums[j] *= inv
	}
	return sums
}

// MaxAbs returns the largest absolute value in m.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSame(op string, ms ...*Matrix) {
	r, c := ms[0].Rows, ms[0].Cols
	for _, m := range ms[1:] {
		if m.Rows != r || m.Cols != c {
			panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, r, c, m.Rows, m.Cols))
		}
	}
}
