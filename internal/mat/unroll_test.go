package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the reference implementation the unrolled kernels are
// checked against.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestMulMatchesNaiveAcrossShapes covers the unrolled remainder paths
// (lengths not divisible by 4).
func TestMulMatchesNaiveAcrossShapes(t *testing.T) {
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		m := 1 + int(mRaw%7)
		k := 1 + int(kRaw%9)
		n := 1 + int(nRaw%11)
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		want := naiveMul(a, b)
		got := Mul(New(m, n), a, b)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDotUnrolledRemainders(t *testing.T) {
	for n := 1; n <= 9; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := 0; i < n; i++ {
			a[i] = float64(i + 1)
			b[i] = float64(2 * (i + 1))
			want += a[i] * b[i]
		}
		if got := dotUnrolled(a, b); got != want {
			t.Fatalf("n=%d: dotUnrolled = %v, want %v", n, got, want)
		}
	}
}

func TestAxpyUnrolledRemainders(t *testing.T) {
	for n := 1; n <= 9; n++ {
		dst := make([]float64, n)
		src := make([]float64, n)
		for i := range src {
			dst[i] = 1
			src[i] = float64(i)
		}
		axpyUnrolled(dst, src, 2)
		for i := range dst {
			if want := 1 + 2*float64(i); dst[i] != want {
				t.Fatalf("n=%d dst[%d] = %v, want %v", n, i, dst[i], want)
			}
		}
	}
}

func TestMulZeroCoefficientsMatchNaive(t *testing.T) {
	// Zero-heavy operands (ReLU-sparse activations) must take no special
	// path: results match the dense reference exactly.
	a := FromSlice(2, 3, []float64{0, 1, 0, 2, 0, 3})
	b := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	want := naiveMul(a, b)
	got := Mul(New(2, 2), a, b)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("zero-coefficient result diverges at %d", i)
		}
	}
}
