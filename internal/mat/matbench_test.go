package mat

import "testing"

func BenchmarkMul(b *testing.B) {
	a := New(64, 266)
	x := New(266, 128)
	d := New(64, 128)
	for i := range a.Data {
		a.Data[i] = 1.1
	}
	for i := range x.Data {
		x.Data[i] = 0.9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(d, a, x)
	}
}

func BenchmarkMulT(b *testing.B) {
	a := New(64, 256)
	x := New(256, 256)
	d := New(64, 256)
	for i := range a.Data {
		a.Data[i] = 1.1
	}
	for i := range x.Data {
		x.Data[i] = 0.9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulT(d, a, x)
	}
}

func BenchmarkTMul(b *testing.B) {
	a := New(64, 256)
	x := New(64, 256)
	d := New(256, 256)
	for i := range a.Data {
		a.Data[i] = 1.1
	}
	for i := range x.Data {
		x.Data[i] = 0.9
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMul(d, a, x)
	}
}
