package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// The GEMM kernels below are the training hot path: every Dense
// Forward/Backward and every critic pass bottoms out here. They share
// three design rules:
//
//   - Full IEEE semantics: every a[i][k]·b[k][j] product is computed.
//     There is deliberately no "skip zero coefficient" short-circuit —
//     0·NaN is NaN, and the DDPG learner's NaN-batch skip and the
//     divergence Supervisor rely on non-finite values propagating
//     through matmuls instead of being silently swallowed (a ReLU-sparse
//     activation against a poisoned weight would otherwise hide the
//     corruption).
//   - k-fused blocking: the innermost axpy/dot kernels consume four
//     k-terms per pass over the destination row, quartering the
//     load/store traffic on dst relative to one-axpy-per-k.
//   - Row partitioning: above gemmMinParallelFlops of work (and with
//     GOMAXPROCS > 1) the destination rows are split across goroutines.
//     Each row is produced by exactly one worker running the identical
//     serial kernel, so the parallel result is bit-for-bit equal to the
//     serial one, at any worker count.
//
// Each call returns only when dst is fully written; dst must not alias
// a or b. Concurrent calls are safe as long as their dst regions are
// disjoint.

// gemmMinParallelFlops is the approximate kernel cost (2·m·k·n floating
// point operations) below which goroutine fan-out costs more than it
// buys. It is a variable so tests can force the parallel path.
var gemmMinParallelFlops = 1 << 18

// gemmParallelWorthwhile reports whether a kernel of the given size
// should fan out across goroutines. It is checked before the dispatch
// closure is built, so the serial path allocates nothing — the nn
// package's AllocsPerRun assertions depend on that.
func gemmParallelWorthwhile(rows, flops int) bool {
	return flops >= gemmMinParallelFlops && rows >= 2 && runtime.GOMAXPROCS(0) >= 2
}

// gemmParallelRows splits [0, rows) across GOMAXPROCS workers, running
// fn on each disjoint chunk, and returns once all chunks are done.
func gemmParallelRows(rows int, fn func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			fn(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

// Mul computes dst = a × b. dst must be a.Rows×b.Cols and must not
// alias a or b. Every element of dst is overwritten. It returns dst
// for chaining.
func Mul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if gemmParallelWorthwhile(a.Rows, 2*a.Rows*a.Cols*b.Cols) {
		gemmParallelRows(a.Rows, func(i0, i1 int) { mulRows(dst, a, b, i0, i1) })
	} else {
		mulRows(dst, a, b, 0, a.Rows)
	}
	return dst
}

// mulRows computes rows [i0, i1) of dst = a × b with the k loop fused
// eight terms at a time (four for the remainder).
func mulRows(dst, a, b *Matrix, i0, i1 int) {
	kTotal := a.Cols
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for ; k+7 < kTotal; k += 8 {
			axpy8(drow,
				b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3),
				b.Row(k+4), b.Row(k+5), b.Row(k+6), b.Row(k+7),
				arow[k], arow[k+1], arow[k+2], arow[k+3],
				arow[k+4], arow[k+5], arow[k+6], arow[k+7])
		}
		for ; k+3 < kTotal; k += 4 {
			axpy4(drow, b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3),
				arow[k], arow[k+1], arow[k+2], arow[k+3])
		}
		for ; k < kTotal; k++ {
			axpyUnrolled(drow, b.Row(k), arow[k])
		}
	}
}

// axpy4 computes dst += a0·b0 + a1·b1 + a2·b2 + a3·b3 elementwise; the
// four fused terms share one load/store round trip on dst. The slice
// re-bind eliminates bounds checks in the hot loop.
func axpy4(dst, b0, b1, b2, b3 []float64, a0, a1, a2, a3 float64) {
	n := len(dst)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	j := 0
	for ; j+1 < n; j += 2 {
		s0 := dst[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		s1 := dst[j+1] + a0*b0[j+1] + a1*b1[j+1] + a2*b2[j+1] + a3*b3[j+1]
		dst[j] = s0
		dst[j+1] = s1
	}
	if j < n {
		dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// axpy8 computes dst += Σ aᵢ·bᵢ over eight fused terms; one load/store
// round trip on dst serves sixteen flops per two-element step.
func axpy8(dst, b0, b1, b2, b3, b4, b5, b6, b7 []float64, a0, a1, a2, a3, a4, a5, a6, a7 float64) {
	n := len(dst)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	b4, b5, b6, b7 = b4[:n], b5[:n], b6[:n], b7[:n]
	j := 0
	for ; j+1 < n; j += 2 {
		s0 := dst[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] +
			a4*b4[j] + a5*b5[j] + a6*b6[j] + a7*b7[j]
		s1 := dst[j+1] + a0*b0[j+1] + a1*b1[j+1] + a2*b2[j+1] + a3*b3[j+1] +
			a4*b4[j+1] + a5*b5[j+1] + a6*b6[j+1] + a7*b7[j+1]
		dst[j] = s0
		dst[j+1] = s1
	}
	if j < n {
		dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] +
			a4*b4[j] + a5*b5[j] + a6*b6[j] + a7*b7[j]
	}
}

// axpyUnrolled computes dst += s·src with 4-way unrolling.
func axpyUnrolled(dst, src []float64, s float64) {
	n := len(dst)
	src = src[:n]
	j := 0
	for ; j+3 < n; j += 4 {
		dst[j] += s * src[j]
		dst[j+1] += s * src[j+1]
		dst[j+2] += s * src[j+2]
		dst[j+3] += s * src[j+3]
	}
	for ; j < n; j++ {
		dst[j] += s * src[j]
	}
}

// MulT computes dst = a × bᵀ. dst must be a.Rows×b.Rows and must not
// alias a or b. Every element of dst is overwritten.
func MulT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT shape mismatch %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulT dst shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if gemmParallelWorthwhile(a.Rows, 2*a.Rows*a.Cols*b.Rows) {
		gemmParallelRows(a.Rows, func(i0, i1 int) { mulTRows(dst, a, b, i0, i1) })
	} else {
		mulTRows(dst, a, b, 0, a.Rows)
	}
	return dst
}

// mulTRows computes rows [i0, i1) of dst = a × bᵀ, producing four
// output columns per pass over a row of a.
func mulTRows(dst, a, b *Matrix, i0, i1 int) {
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+7 < b.Rows; j += 8 {
			drow[j], drow[j+1], drow[j+2], drow[j+3] =
				dot4(arow, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
			drow[j+4], drow[j+5], drow[j+6], drow[j+7] =
				dot4(arow, b.Row(j+4), b.Row(j+5), b.Row(j+6), b.Row(j+7))
		}
		for ; j+3 < b.Rows; j += 4 {
			drow[j], drow[j+1], drow[j+2], drow[j+3] =
				dot4(arow, b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3))
		}
		for ; j < b.Rows; j++ {
			drow[j] = dotUnrolled(arow, b.Row(j))
		}
	}
}

// dot4 computes the four inner products of a with b0..b3 in one pass
// over a. Four outputs per call is the measured sweet spot: an
// eight-output variant spills accumulators to the stack and loses ~25%.
func dot4(a, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for j := 0; j < n; j++ {
		v := a[j]
		s0 += v * b0[j]
		s1 += v * b1[j]
		s2 += v * b2[j]
		s3 += v * b3[j]
	}
	return s0, s1, s2, s3
}

// dotUnrolled is an unrolled inner product for the hot paths.
func dotUnrolled(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+3 < n; j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	s := s0 + s1 + s2 + s3
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// TMul computes dst = aᵀ × b. dst must be a.Cols×b.Cols and must not
// alias a or b. Every element of dst is overwritten.
func TMul(dst, a, b *Matrix) *Matrix {
	checkTMulShapes("TMul", dst, a, b)
	if gemmParallelWorthwhile(a.Cols, 2*a.Rows*a.Cols*b.Cols) {
		gemmParallelRows(a.Cols, func(i0, i1 int) { tMulRows(dst, a, b, i0, i1, true) })
	} else {
		tMulRows(dst, a, b, 0, a.Cols, true)
	}
	return dst
}

// TMulAdd computes dst += aᵀ × b — the accumulate flavor Dense.Backward
// uses to fold the weight gradient xᵀ·∂y straight into the gradient
// tensor without a scratch product.
func TMulAdd(dst, a, b *Matrix) *Matrix {
	checkTMulShapes("TMulAdd", dst, a, b)
	if gemmParallelWorthwhile(a.Cols, 2*a.Rows*a.Cols*b.Cols) {
		gemmParallelRows(a.Cols, func(i0, i1 int) { tMulRows(dst, a, b, i0, i1, false) })
	} else {
		tMulRows(dst, a, b, 0, a.Cols, false)
	}
	return dst
}

func checkTMulShapes(op string, dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: %s shape mismatch (%dx%d)ᵀ × %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s dst shape %dx%d, want %dx%d", op, dst.Rows, dst.Cols, a.Cols, b.Cols))
	}
}

// tMulRows computes rows [i0, i1) of dst = aᵀ × b (dst row i is column
// i of a swept against b), fusing four k-terms per pass. zero selects
// overwrite (TMul) versus accumulate (TMulAdd) semantics.
func tMulRows(dst, a, b *Matrix, i0, i1 int, zero bool) {
	if zero {
		for i := i0; i < i1; i++ {
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
		}
	}
	kTotal := a.Rows
	k := 0
	for ; k+7 < kTotal; k += 8 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		a4, a5, a6, a7 := a.Row(k+4), a.Row(k+5), a.Row(k+6), a.Row(k+7)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		b4, b5, b6, b7 := b.Row(k+4), b.Row(k+5), b.Row(k+6), b.Row(k+7)
		for i := i0; i < i1; i++ {
			axpy8(dst.Row(i), b0, b1, b2, b3, b4, b5, b6, b7,
				a0[i], a1[i], a2[i], a3[i], a4[i], a5[i], a6[i], a7[i])
		}
	}
	for ; k+3 < kTotal; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := i0; i < i1; i++ {
			axpy4(dst.Row(i), b0, b1, b2, b3, a0[i], a1[i], a2[i], a3[i])
		}
	}
	for ; k < kTotal; k++ {
		arow, brow := a.Row(k), b.Row(k)
		for i := i0; i < i1; i++ {
			axpyUnrolled(dst.Row(i), brow, arow[i])
		}
	}
}
