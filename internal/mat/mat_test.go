package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v", row[2])
	}
	row[0] = 5 // views alias
	if m.At(1, 0) != 5 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	d[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(New(2, 2), a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("Mul[%d] = %v, want %v", i, got.Data[i], want[i])
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 4, 5), randMat(rng, 3, 5)
	bt := New(5, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := Mul(New(4, 3), a, bt)
	got := MulT(New(4, 3), a, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MulT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 5, 4), randMat(rng, 5, 3)
	at := New(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := Mul(New(4, 3), at, b)
	got := TMul(New(4, 3), a, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TMul[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	sum := Add(New(1, 3), a, b)
	if sum.Data[0] != 5 || sum.Data[2] != 9 {
		t.Fatalf("Add = %v", sum.Data)
	}
	diff := Sub(New(1, 3), b, a)
	if diff.Data[0] != 3 || diff.Data[2] != 3 {
		t.Fatalf("Sub = %v", diff.Data)
	}
	had := Hadamard(New(1, 3), a, b)
	if had.Data[1] != 10 {
		t.Fatalf("Hadamard = %v", had.Data)
	}
	a.Clone().Scale(2)
	if a.Data[0] != 1 {
		t.Fatal("Scale on clone mutated original")
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 1})
	b := FromSlice(1, 2, []float64{2, 4})
	a.AddScaled(0.5, b)
	if a.Data[0] != 2 || a.Data[1] != 3 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestAddRowVectorAndColMeans(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVector([]float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", m.Data)
	}
	means := m.ColMeans()
	if means[0] != 12 || means[1] != 23 {
		t.Fatalf("ColMeans = %v", means)
	}
}

func TestApplyMaxAbsNorm(t *testing.T) {
	m := FromSlice(1, 3, []float64{-3, 1, 2})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	m.Apply(math.Abs)
	if m.Data[0] != 3 {
		t.Fatalf("Apply = %v", m.Data)
	}
	if !almostEq(m.FrobeniusNorm(), math.Sqrt(14), 1e-12) {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	// Build SPD matrix A = BᵀB + n·I.
	b := randMat(rng, n, n)
	a := TMul(New(n, n), b, b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	// Check L·Lᵀ == A.
	rec := MulT(New(n, n), l, l)
	for i := range a.Data {
		if !almostEq(rec.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("L·Lᵀ[%d] = %v, want %v", i, rec.Data[i], a.Data[i])
		}
	}
	// Check solve: A·x = rhs.
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := CholSolve(l, rhs)
	ax := make([]float64, n)
	for i := 0; i < n; i++ {
		ax[i] = Dot(a.Row(i), x)
	}
	for i := range rhs {
		if !almostEq(ax[i], rhs[i], 1e-9) {
			t.Fatalf("A·x[%d] = %v, want %v", i, ax[i], rhs[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestCholLogDet(t *testing.T) {
	a := FromSlice(2, 2, []float64{4, 0, 0, 9}) // det = 36
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(CholLogDet(l), math.Log(36), 1e-12) {
		t.Fatalf("CholLogDet = %v, want %v", CholLogDet(l), math.Log(36))
	}
}

func TestVecHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2")
	}
	if !almostEq(Dist2([]float64{0, 0}, []float64{3, 4}), 5, 1e-12) {
		t.Fatal("Dist2")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean nil")
	}
	if !almostEq(Stddev([]float64{2, 4}), 1, 1e-12) {
		t.Fatal("Stddev")
	}
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
	if ArgMax([]float64{1, 3, 2}) != 1 || ArgMax(nil) != -1 {
		t.Fatal("ArgMax")
	}
	z := Standardize([]float64{3}, []float64{1}, []float64{2})
	if z[0] != 1 {
		t.Fatal("Standardize")
	}
	z = Standardize([]float64{3}, []float64{1}, []float64{0})
	if z[0] != 0 {
		t.Fatal("Standardize zero std")
	}
}

// Property: matrix multiplication is associative within tolerance.
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randMat(rng, 3, 4), randMat(rng, 4, 2), randMat(rng, 2, 5)
		ab := Mul(New(3, 2), a, b)
		abc1 := Mul(New(3, 5), ab, c)
		bc := Mul(New(4, 5), b, c)
		abc2 := Mul(New(3, 5), a, bc)
		for i := range abc1.Data {
			if !almostEq(abc1.Data[i], abc2.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add then Sub is identity.
func TestAddSubInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng, 4, 4), randMat(rng, 4, 4)
		s := Add(New(4, 4), a, b)
		r := Sub(New(4, 4), s, b)
		for i := range a.Data {
			if !almostEq(r.Data[i], a.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
