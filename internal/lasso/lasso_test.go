package lasso

import (
	"math"
	"math/rand"
	"testing"

	"cdbtune/internal/mat"
)

func makeData(rng *rand.Rand, n int, coef []float64, noise float64) (*mat.Matrix, []float64) {
	d := len(coef)
	x := mat.New(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = 3 + mat.Dot(x.Row(i), coef) + noise*rng.NormFloat64()
	}
	return x, y
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(mat.New(0, 2), nil, 0.1, 10); err == nil {
		t.Fatal("empty data must error")
	}
	if _, err := Fit(mat.New(3, 2), []float64{1}, 0.1, 10); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coef := []float64{4, 0, 0, -3, 0, 0, 0, 0}
	x, y := makeData(rng, 200, coef, 0.05)
	res, err := Fit(x, y, 0.05, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Active set must be exactly features 0 and 3.
	for j, b := range res.Coef {
		active := math.Abs(b) > 0.05
		wantActive := j == 0 || j == 3
		if active != wantActive {
			t.Fatalf("feature %d: coef %v, active=%v want %v", j, b, active, wantActive)
		}
	}
	if res.Coef[0] <= 0 || res.Coef[3] >= 0 {
		t.Fatal("signs wrong")
	}
}

func TestPredictAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coef := []float64{2, -1, 0.5}
	x, y := makeData(rng, 300, coef, 0.02)
	res, err := Fit(x, y, 0.001, 800)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 50; i++ {
		q := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		want := 3 + mat.Dot(q, coef)
		sum += math.Abs(res.Predict(q) - want)
	}
	if avg := sum / 50; avg > 0.08 {
		t.Fatalf("mean prediction error %v", avg)
	}
}

func TestHighLambdaKillsAllCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := makeData(rng, 100, []float64{1, 1}, 0.1)
	res, err := Fit(x, y, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range res.Coef {
		if b != 0 {
			t.Fatalf("coef %d = %v, want 0 at huge lambda", j, b)
		}
	}
	// Prediction falls back to the intercept (≈ mean of y).
	if math.Abs(res.Predict([]float64{0.5, 0.5})-mat.Mean(y)) > 1e-9 {
		t.Fatal("intercept-only prediction wrong")
	}
}

func TestRankFeaturesOrdersByImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Feature 2 dominates, then 0, then 5; rest are noise.
	coef := []float64{2, 0, 8, 0, 0, 0.8, 0, 0}
	x, y := makeData(rng, 400, coef, 0.05)
	rank, err := RankFeatures(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rank) != 8 {
		t.Fatalf("rank has %d entries", len(rank))
	}
	if rank[0] != 2 {
		t.Fatalf("top feature = %d, want 2 (rank %v)", rank[0], rank)
	}
	if rank[1] != 0 {
		t.Fatalf("second feature = %d, want 0 (rank %v)", rank[1], rank)
	}
	pos := make(map[int]int)
	for i, j := range rank {
		pos[j] = i
	}
	if pos[5] > 4 {
		t.Fatalf("feature 5 ranked %d, should be near front (rank %v)", pos[5], rank)
	}
	// Every feature appears exactly once.
	if len(pos) != 8 {
		t.Fatal("rank has duplicates")
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	x := mat.FromSlice(4, 2, []float64{1, 0.1, 1, 0.4, 1, 0.7, 1, 0.9})
	y := []float64{1, 2, 3, 4}
	res, err := Fit(x, y, 0.01, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Coef[0]) || math.IsNaN(res.Coef[1]) {
		t.Fatal("NaN coefficients on constant feature")
	}
}
