package lasso

import (
	"errors"
	"math"

	"cdbtune/internal/mat"
)

// Result holds a fitted Lasso model over standardized features.
type Result struct {
	// Coef are the coefficients in the standardized feature space.
	Coef []float64
	// Intercept is the target mean.
	Intercept float64
	// FeatureMean and FeatureStd record the standardization.
	FeatureMean, FeatureStd []float64
}

// Fit solves min ½n⁻¹‖y − Xβ‖² + λ‖β‖₁ by coordinate descent. X is n×d.
func Fit(x *mat.Matrix, y []float64, lambda float64, iters int) (*Result, error) {
	n, d := x.Rows, x.Cols
	if n != len(y) {
		return nil, errors.New("lasso: x rows and y length differ")
	}
	if n == 0 {
		return nil, errors.New("lasso: no data")
	}
	if iters <= 0 {
		iters = 200
	}
	// Standardize features and center target.
	mean := x.ColMeans()
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < n; i++ {
			v := x.At(i, j) - mean[j]
			s += v * v
		}
		std[j] = math.Sqrt(s / float64(n))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	xs := mat.New(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			xs.Set(i, j, (x.At(i, j)-mean[j])/std[j])
		}
	}
	yMean := mat.Mean(y)
	r := make([]float64, n) // residuals
	for i := range r {
		r[i] = y[i] - yMean
	}
	beta := make([]float64, d)
	nf := float64(n)
	for it := 0; it < iters; it++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			// rho = (1/n) Σ x_ij (r_i + x_ij β_j)
			var rho float64
			for i := 0; i < n; i++ {
				rho += xs.At(i, j) * (r[i] + xs.At(i, j)*beta[j])
			}
			rho /= nf
			// Column norm²/n is ≈1 after standardization.
			var colSq float64
			for i := 0; i < n; i++ {
				v := xs.At(i, j)
				colSq += v * v
			}
			colSq /= nf
			if colSq == 0 { // constant feature carries no signal
				beta[j] = 0
				continue
			}
			newBeta := softThreshold(rho, lambda) / colSq
			if delta := newBeta - beta[j]; delta != 0 {
				for i := 0; i < n; i++ {
					r[i] -= xs.At(i, j) * delta
				}
				if a := math.Abs(delta); a > maxDelta {
					maxDelta = a
				}
				beta[j] = newBeta
			}
		}
		if maxDelta < 1e-7 {
			break
		}
	}
	return &Result{Coef: beta, Intercept: yMean, FeatureMean: mean, FeatureStd: std}, nil
}

// Predict evaluates the fitted model at a raw (unstandardized) point.
func (r *Result) Predict(x []float64) float64 {
	out := r.Intercept
	for j, b := range r.Coef {
		if b != 0 {
			out += b * (x[j] - r.FeatureMean[j]) / r.FeatureStd[j]
		}
	}
	return out
}

// RankFeatures orders feature indices by decreasing |coefficient| along a
// descending-λ path: features entering the model earlier rank higher,
// which is OtterTune's knob-importance ordering.
func RankFeatures(x *mat.Matrix, y []float64, lambdas []float64) ([]int, error) {
	d := x.Cols
	rank := make([]int, 0, d)
	seen := make(map[int]bool, d)
	if len(lambdas) == 0 {
		lambdas = []float64{0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.001}
	}
	for _, l := range lambdas {
		res, err := Fit(x, y, l, 300)
		if err != nil {
			return nil, err
		}
		// Among features active at this λ, add unseen ones by |coef|.
		type fc struct {
			j int
			a float64
		}
		var active []fc
		for j, b := range res.Coef {
			if b != 0 && !seen[j] {
				active = append(active, fc{j, math.Abs(b)})
			}
		}
		for len(active) > 0 {
			best := 0
			for i := range active {
				if active[i].a > active[best].a {
					best = i
				}
			}
			rank = append(rank, active[best].j)
			seen[active[best].j] = true
			active = append(active[:best], active[best+1:]...)
		}
	}
	// Append any never-active features in index order.
	for j := 0; j < d; j++ {
		if !seen[j] {
			rank = append(rank, j)
		}
	}
	return rank, nil
}

func softThreshold(x, t float64) float64 {
	switch {
	case x > t:
		return x - t
	case x < -t:
		return x + t
	default:
		return 0
	}
}
