// Package lasso implements L1-regularized linear regression via cyclic
// coordinate descent. OtterTune [4] ranks knob importance with Lasso
// paths; internal/ottertune uses this package for the Figure 7 knob
// ordering.
package lasso
