GO ?= go

.PHONY: build test check bench chaos-smoke divergence-smoke serve-smoke drift-smoke fleet-smoke crash-smoke lsm-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: vet, the full test suite, a
# race-detector pass (the parallel trainer shares one agent across
# goroutines), and a single-iteration smoke run of the contention
# benchmarks.
check:
	./scripts/check.sh

# chaos-smoke runs the seeded fault-injection scenario end to end: a
# crash-storm tuning request that must end on the best-known-good
# configuration, and a chaotic training run killed after 3 episodes and
# resumed from its checkpoint with matching episode accounting. See
# EXPERIMENTS.md ("Chaos recipe").
chaos-smoke:
	$(GO) test -count=1 -run 'TestChaosSmoke|TestTuningRequestSurvivesCrashStorm' ./internal/controller/ -v

# serve-smoke runs the multi-tenant serving scenario end to end: an HTTP
# server on a random port, a scratch tuning job against the simulator that
# must complete and register its model, and a second same-workload job
# that must take the warm-start path and converge in fewer episodes. See
# EXPERIMENTS.md ("Serving walkthrough").
serve-smoke:
	$(GO) test -count=1 -timeout 120s -run 'TestServeSmoke' ./internal/server/ -v

# fleet-smoke runs the multi-process robustness scenario end to end: a
# 3-process fleet over one lease-replicated registry, 50 concurrent
# tenants, one process SIGKILLed mid-run and another's lease renewals
# stalled past the TTL. It must finish with zero lost jobs, at least one
# recorded failover via lease steal, a bounded submit-to-deploy p99, and
# a CRC-clean registry. See README ("Fleet serving") and DESIGN.md.
fleet-smoke:
	$(GO) run ./cmd/loadgen

# crash-smoke runs the bounded, seeded crash-consistency exploration: for
# every durable-path workload (registry, change log, lease, fleet journal,
# checkpoint), a simulated power cut before every mutating filesystem
# operation, with strict (fsynced-only) and torn (seeded partial-tail)
# disk images verified at each point. Zero invariant violations are
# tolerated, and the sensitivity test proves the harness still catches a
# deliberately re-introduced torn-tail bug. See DESIGN.md ("Durability
# contract").
crash-smoke:
	$(GO) test -count=1 -timeout 120s -run 'TestCrashSmoke|TestHarnessCatchesTornTailBug' ./internal/crashtest/ -v

# lsm-smoke runs a short seeded DDPG tune against the LSM storage engine
# on a write-only workload: the tuned configuration must beat the shipped
# defaults on throughput, and at least one write-stall event must be
# observed along the way (proving the tuner trains through the engine's
# compaction-debt regime, not around it). See README ("Storage engines")
# and DESIGN.md §10.
lsm-smoke:
	$(GO) test -count=1 -timeout 120s -run 'TestLSMSmoke' ./internal/simdb/lsm/ -v

# divergence-smoke runs the learner-health supervisor scenarios: a seeded
# critic divergence that must heal and converge, an exhausted heal budget
# that must abort with a diagnosis, and the full-stack smoke where chaos
# injects finite reward spikes past disabled clamps. See EXPERIMENTS.md
# ("Divergence-injection recipe").
divergence-smoke:
	$(GO) test -count=1 -timeout 120s -run 'TestDivergence' ./internal/core/ -v

# drift-smoke runs the dynamic-serving scenario: a seeded time-varying
# timeline whose flash crowd must trigger at least one drift-detected
# re-tune, with zero unreverted guardrail violations. See EXPERIMENTS.md
# ("Dynamic-workload recipe").
drift-smoke:
	$(GO) test -count=1 -timeout 120s -run 'TestDriftSmoke' ./internal/core/ -v

# bench runs the replay-contention and batched-inference microbenchmarks,
# then the hot-path kernel/train-step benchmarks, and refreshes the
# tracked BENCH_hotpath.json trajectory (GEMM GFLOP/s, µs and allocs per
# DDPG train step, batched-inference latency, episodes/sec, and the
# speedups against the recorded naive baseline). -cpu 4 simulates four
# training workers even on fewer cores; see EXPERIMENTS.md ("Replay
# contention & batched inference" and "Hot-path bench baseline") for how
# to read the numbers.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMemoryAddSample|BenchmarkActBatched' -benchtime=0.5s -cpu 4 .
	$(GO) test -run '^$$' -bench 'BenchmarkMul|BenchmarkMulT|BenchmarkTMul' -benchtime=0.5s ./internal/mat/
	$(GO) test -run '^$$' -bench 'BenchmarkTrainStepInfo|BenchmarkActBatch8' -benchtime=0.5s ./internal/rl/ddpg/
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json
	$(GO) run ./cmd/benchjson -check BENCH_hotpath.json
