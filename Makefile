GO ?= go

.PHONY: build test check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: vet, the full test suite, and a
# race-detector pass (the parallel trainer shares one agent across
# goroutines).
check:
	./scripts/check.sh
