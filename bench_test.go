package cdbtune_test

// One benchmark per table and figure of the paper's evaluation (§5 and
// Appendix C), plus the DESIGN.md design-choice ablations. Each iteration
// regenerates the experiment end-to-end — training models, running
// baselines, measuring the simulated fleet — and logs the rendered
// rows/series so `go test -bench=. -benchmem` doubles as the reproduction
// run. EXPERIMENTS.md records paper-vs-measured per experiment.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cdbtune/internal/expr"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl"
	"cdbtune/internal/rl/ddpg"
)

// benchBudget is the per-bench compute budget; quick keeps the full suite
// runnable on a single core.
func benchBudget() expr.Budget { return expr.Quick() }

func logTables(b *testing.B, ts []expr.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range ts {
		b.Log("\n" + t.Render())
	}
}

func logFigs(b *testing.B, fs []expr.Figure, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFig1 regenerates Figure 1: the motivation panels — OtterTune
// (±deep learning) vs sample volume (a, b), the knob-count growth (c) and
// the 2-knob performance surface (d).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := expr.Fig1AB(benchBudget(), []int{40, 80, 160, 320})
		logFigs(b, figs, err)
		b.Log("\n" + expr.Fig1C().Render())
		t, err := expr.Fig1D(7)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkTable1 regenerates Table 1 (instance matrix).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("\n" + expr.Table1().Render())
	}
}

// BenchmarkTable2 regenerates Table 2: per-tool online tuning steps and
// virtual wall-clock time.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table2(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkTiming regenerates the §5.1.1 execution-time breakdown.
func BenchmarkTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("\n" + expr.Timing().Render())
	}
}

// BenchmarkFig5 regenerates Figure 5: performance vs accumulated trying
// steps (5..50) on the three Sysbench workloads.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := expr.Fig5(benchBudget(), 50)
		logFigs(b, figs, err)
	}
}

// BenchmarkFig6to8 regenerates Figures 6-8: performance vs tunable knob
// count under the DBA, OtterTune(Lasso) and random orderings.
func BenchmarkFig6to8(b *testing.B) {
	counts := []int{20, 60, 120, 200, 266}
	for i := 0; i < b.N; i++ {
		for _, order := range []expr.KnobOrder{expr.OrderDBA, expr.OrderOtterTune, expr.OrderRandom} {
			tput, lat, iters, err := expr.KnobSweep(benchBudget(), order, counts)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + tput.Render())
			b.Log("\n" + lat.Render())
			if order == expr.OrderRandom {
				b.Log("\n" + iters.Render())
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: the six-way comparison on Sysbench
// RW/RO/WO over CDB-A.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig9(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkTable3 regenerates Table 3: CDBTune's improvement over
// BestConfig, DBA and OtterTune.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table3(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig10 regenerates Figure 10: adaptability to RAM changes
// (M_8G→XG cross testing vs normal testing, Sysbench WO).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig10(benchBudget(), nil)
		logTables(b, ts, err)
	}
}

// BenchmarkFig11 regenerates Figure 11: adaptability to disk changes
// (M_200G→XG, Sysbench RO).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig11(benchBudget(), nil)
		logTables(b, ts, err)
	}
}

// BenchmarkFig12 regenerates Figure 12: workload transfer (M_RW→TPC-C).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Fig12(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig14 regenerates Appendix C.1.1: the reward-function ablation.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig14(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkFig15 regenerates Appendix C.1.2: the CT/CL coefficient sweep.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := expr.Fig15(benchBudget(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + f.Render())
	}
}

// BenchmarkTable6 regenerates Appendix C.2: tuning performance across
// actor/critic architectures (widths divided by 4 under the quick budget).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table6(benchBudget(), 4)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig16to18 regenerates Appendix C.3: MongoDB (YCSB), Postgres
// (TPC-C) and local MySQL (TPC-C).
func BenchmarkFig16to18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig16to18(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkQLearnDQN regenerates the §3.3 ablation: Q-Learning and DQN
// against DDPG, and the discrete action-space blow-up.
func BenchmarkQLearnDQN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.QLearnDQN(benchBudget(), 0)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkAblationReplay regenerates the prioritized-vs-uniform replay
// ablation (§5.1 claims prioritized replay halves convergence).
func BenchmarkAblationReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.AblationReplay(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkAblationAction regenerates the action-representation ablation
// (absolute full-vector actions, §3.2, vs incremental deltas).
func BenchmarkAblationAction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.AblationAction(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// benchTransition builds a transition of realistic size: the 63-metric
// state of §3.1 and a 20-knob action.
func benchTransition(rng *rand.Rand) rl.Transition {
	state := make([]float64, metrics.NumMetrics)
	next := make([]float64, metrics.NumMetrics)
	act := make([]float64, 20)
	for i := range state {
		state[i] = rng.Float64()
		next[i] = rng.Float64()
	}
	for i := range act {
		act[i] = rng.Float64()
	}
	return rl.Transition{State: state, Action: act, Reward: rng.NormFloat64(), NextState: next}
}

// contendMemory is the shared workload of BenchmarkMemoryAddSample: every
// goroutine stores one transition per iteration and, every 8th iteration,
// draws a 64-transition batch and feeds back TD errors — the trainer's
// observe:sample ratio at UpdatesPerStep below 1. lock is nil for pools
// that are concurrent-safe on their own (rl.ShardedMemory) and an external
// mutex for the single-lock pools, emulating the agentMu discipline the
// pre-sharding trainer used.
func contendMemory(b *testing.B, mem rl.Memory, lock *sync.Mutex) {
	b.Helper()
	seedRng := rand.New(rand.NewSource(7))
	for i := 0; i < 1024; i++ {
		mem.Add(benchTransition(seedRng))
	}
	var seeds atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(100 + seeds.Add(1)))
		tr := benchTransition(rng)
		errs := make([]float64, 64)
		n := 0
		for pb.Next() {
			if lock != nil {
				lock.Lock()
			}
			mem.Add(tr)
			if n%8 == 0 {
				_, idx, _ := mem.Sample(rng, 64)
				for i := range errs {
					errs[i] = rng.NormFloat64()
				}
				mem.UpdatePriorities(idx, errs)
			}
			if lock != nil {
				lock.Unlock()
			}
			n++
		}
	})
}

// BenchmarkMemoryAddSample measures replay-pool contention under
// concurrent writers: the two single-lock pools behind one external mutex
// (the old agentMu discipline) against the lock-striped sharded pool. Run
// with -cpu 4 (or your worker count) to simulate parallel training
// workers; EXPERIMENTS.md records reference numbers.
func BenchmarkMemoryAddSample(b *testing.B) {
	const capacity = 100_000
	b.Run("uniform", func(b *testing.B) {
		var mu sync.Mutex
		contendMemory(b, rl.NewUniformMemory(capacity), &mu)
	})
	b.Run("prioritized", func(b *testing.B) {
		var mu sync.Mutex
		contendMemory(b, rl.NewPrioritizedMemory(capacity), &mu)
	})
	b.Run("sharded", func(b *testing.B) {
		contendMemory(b, rl.NewShardedMemory(capacity, 8, true), nil)
	})
}

// BenchmarkActBatched measures what the cross-worker inference batcher
// buys: 8 action selections as 8 single-state forward passes versus one
// batched 8-row pass through ddpg.Agent.ActBatch.
func BenchmarkActBatched(b *testing.B) {
	const nStates = 8
	cfg := ddpg.DefaultConfig(metrics.NumMetrics, 20)
	agent := ddpg.New(cfg)
	rng := rand.New(rand.NewSource(3))
	states := make([][]float64, nStates)
	for i := range states {
		states[i] = make([]float64, cfg.StateDim)
		for j := range states[i] {
			states[i][j] = rng.Float64()
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range states {
				agent.Act(s)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			agent.ActBatch(states)
		}
	})
}
