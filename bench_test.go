package cdbtune_test

// One benchmark per table and figure of the paper's evaluation (§5 and
// Appendix C), plus the DESIGN.md design-choice ablations. Each iteration
// regenerates the experiment end-to-end — training models, running
// baselines, measuring the simulated fleet — and logs the rendered
// rows/series so `go test -bench=. -benchmem` doubles as the reproduction
// run. EXPERIMENTS.md records paper-vs-measured per experiment.

import (
	"testing"

	"cdbtune/internal/expr"
)

// benchBudget is the per-bench compute budget; quick keeps the full suite
// runnable on a single core.
func benchBudget() expr.Budget { return expr.Quick() }

func logTables(b *testing.B, ts []expr.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range ts {
		b.Log("\n" + t.Render())
	}
}

func logFigs(b *testing.B, fs []expr.Figure, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, f := range fs {
		b.Log("\n" + f.Render())
	}
}

// BenchmarkFig1 regenerates Figure 1: the motivation panels — OtterTune
// (±deep learning) vs sample volume (a, b), the knob-count growth (c) and
// the 2-knob performance surface (d).
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := expr.Fig1AB(benchBudget(), []int{40, 80, 160, 320})
		logFigs(b, figs, err)
		b.Log("\n" + expr.Fig1C().Render())
		t, err := expr.Fig1D(7)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkTable1 regenerates Table 1 (instance matrix).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("\n" + expr.Table1().Render())
	}
}

// BenchmarkTable2 regenerates Table 2: per-tool online tuning steps and
// virtual wall-clock time.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table2(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkTiming regenerates the §5.1.1 execution-time breakdown.
func BenchmarkTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.Log("\n" + expr.Timing().Render())
	}
}

// BenchmarkFig5 regenerates Figure 5: performance vs accumulated trying
// steps (5..50) on the three Sysbench workloads.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := expr.Fig5(benchBudget(), 50)
		logFigs(b, figs, err)
	}
}

// BenchmarkFig6to8 regenerates Figures 6-8: performance vs tunable knob
// count under the DBA, OtterTune(Lasso) and random orderings.
func BenchmarkFig6to8(b *testing.B) {
	counts := []int{20, 60, 120, 200, 266}
	for i := 0; i < b.N; i++ {
		for _, order := range []expr.KnobOrder{expr.OrderDBA, expr.OrderOtterTune, expr.OrderRandom} {
			tput, lat, iters, err := expr.KnobSweep(benchBudget(), order, counts)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + tput.Render())
			b.Log("\n" + lat.Render())
			if order == expr.OrderRandom {
				b.Log("\n" + iters.Render())
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: the six-way comparison on Sysbench
// RW/RO/WO over CDB-A.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig9(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkTable3 regenerates Table 3: CDBTune's improvement over
// BestConfig, DBA and OtterTune.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table3(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig10 regenerates Figure 10: adaptability to RAM changes
// (M_8G→XG cross testing vs normal testing, Sysbench WO).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig10(benchBudget(), nil)
		logTables(b, ts, err)
	}
}

// BenchmarkFig11 regenerates Figure 11: adaptability to disk changes
// (M_200G→XG, Sysbench RO).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig11(benchBudget(), nil)
		logTables(b, ts, err)
	}
}

// BenchmarkFig12 regenerates Figure 12: workload transfer (M_RW→TPC-C).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Fig12(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig14 regenerates Appendix C.1.1: the reward-function ablation.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig14(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkFig15 regenerates Appendix C.1.2: the CT/CL coefficient sweep.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := expr.Fig15(benchBudget(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + f.Render())
	}
}

// BenchmarkTable6 regenerates Appendix C.2: tuning performance across
// actor/critic architectures (widths divided by 4 under the quick budget).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.Table6(benchBudget(), 4)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkFig16to18 regenerates Appendix C.3: MongoDB (YCSB), Postgres
// (TPC-C) and local MySQL (TPC-C).
func BenchmarkFig16to18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts, err := expr.Fig16to18(benchBudget())
		logTables(b, ts, err)
	}
}

// BenchmarkQLearnDQN regenerates the §3.3 ablation: Q-Learning and DQN
// against DDPG, and the discrete action-space blow-up.
func BenchmarkQLearnDQN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.QLearnDQN(benchBudget(), 0)
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkAblationReplay regenerates the prioritized-vs-uniform replay
// ablation (§5.1 claims prioritized replay halves convergence).
func BenchmarkAblationReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.AblationReplay(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}

// BenchmarkAblationAction regenerates the action-representation ablation
// (absolute full-vector actions, §3.2, vs incremental deltas).
func BenchmarkAblationAction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := expr.AblationAction(benchBudget())
		logTables(b, []expr.Table{t}, err)
	}
}
