// Crossengine: tune all engine variants the paper evaluates (CDB
// MySQL, local MySQL, MongoDB, Postgres) plus the LSM storage engine on a
// representative workload each and print the before/after matrix — the
// Appendix C.3 scenario as a single runnable program.
//
//	go run ./examples/crossengine
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func main() {
	cases := []struct {
		engine knobs.Engine
		inst   simdb.Instance
		w      workload.Workload
	}{
		{knobs.EngineCDB, simdb.CDBA, workload.SysbenchRW()},
		{knobs.EngineLocalMySQL, simdb.CDBC, workload.TPCC()},
		{knobs.EngineMongoDB, simdb.CDBE, workload.YCSB()},
		{knobs.EnginePostgres, simdb.CDBD, workload.TPCC()},
		{knobs.EngineLSM, simdb.CDBC, workload.YCSB()},
	}
	fmt.Printf("%-12s %-12s %-12s | %10s | %10s | %8s\n",
		"engine", "instance", "workload", "default", "CDBTune", "gain")
	fmt.Println("--------------------------------------+------------+------------+---------")
	for ci, c := range cases {
		cat := knobs.ForEngine(c.engine)
		seed := int64(1000 * (ci + 1))

		e := env.New(env.OpenEngine(c.engine, c.inst, seed), cat, c.w)
		base, err := e.Measure()
		if err != nil {
			log.Fatal(err)
		}

		cfg := core.DefaultConfig(cat)
		d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
		d.ActorHidden = []int{64, 64}
		d.CriticHidden = []int{128, 64}
		d.ActionBias = cat.Defaults(c.inst.HW.RAMGB, c.inst.HW.DiskGB)
		d.Seed = seed
		cfg.DDPG = d
		cfg.Seed = seed
		tuner, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return env.New(env.OpenEngine(c.engine, c.inst, seed+10+int64(ep)), cat, c.w)
		}, 25); err != nil {
			log.Fatal(err)
		}
		e2 := env.New(env.OpenEngine(c.engine, c.inst, seed+99), cat, c.w)
		res, err := tuner.OnlineTune(e2, 5, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-12s %-12s | %10.1f | %10.1f | %+7.1f%%\n",
			c.engine, c.inst.Name, c.w.Name,
			base.Ext.Throughput, res.BestPerf.Throughput,
			(res.BestPerf.Throughput/base.Ext.Throughput-1)*100)
	}
	fmt.Println("\nOne library, five engines: the knob catalogs carry per-engine names")
	fmt.Println("and ranges while the tuner sees only normalized vectors (Appendix C.3).")
}
