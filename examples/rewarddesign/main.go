// Rewarddesign: the Appendix C.1.1 ablation as a runnable example — train
// the same agent under the four reward functions and watch convergence
// speed and final quality diverge.
//
//	go run ./examples/rewarddesign
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/reward"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func main() {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()

	fmt.Println("training the same DDPG agent under four reward designs (sysbench-rw, CDB-A)")
	fmt.Printf("%-12s %12s %14s %12s\n", "reward", "iterations", "throughput", "latency99")
	for _, kind := range []reward.Kind{reward.RFA, reward.RFB, reward.RFC, reward.RFCDBTune} {
		cfg := core.DefaultConfig(cat)
		d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
		d.ActorHidden = []int{64, 64}
		d.CriticHidden = []int{128, 64}
		cfg.DDPG = d
		cfg.RewardKind = kind
		cfg.UpdatesPerStep = 2
		cfg.Seed = 7
		cfg.DDPG.ActionBias = cat.Defaults(simdb.CDBA.HW.RAMGB, simdb.CDBA.HW.DiskGB)
		tuner, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return env.New(simdb.New(knobs.EngineCDB, simdb.CDBA, int64(100+ep)), cat, w)
		}, 20)
		if err != nil {
			log.Fatal(err)
		}
		e := env.New(simdb.New(knobs.EngineCDB, simdb.CDBA, 999), cat, w)
		res, err := tuner.OnlineTune(e, 5, true)
		if err != nil {
			log.Fatal(err)
		}
		conv := rep.ConvergedAt
		if conv == 0 {
			conv = rep.Iterations
		}
		fmt.Printf("%-12s %12d %12.1f/s %10.1fms\n",
			kind, conv, res.BestPerf.Throughput, res.BestPerf.Latency99)
	}
	fmt.Println("\nRF-CDBTune weighs progress against both the initial settings and the")
	fmt.Println("previous step, and zeroes rewards earned while regressing (§4.2).")
}
