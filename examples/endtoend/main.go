// Endtoend: the full Figure 2 flow through the controller — a DBA
// training request builds the standard model, then a user tuning request
// is served: the user's workload is captured and replayed, CDBTune
// recommends within 5 steps, the license step approves, and the final
// configuration is exported as a my.cnf fragment.
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/controller"
	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func main() {
	cat := knobs.MySQL(knobs.EngineCDB)
	tcfg := core.DefaultConfig(cat)
	tcfg.DDPG.ActionBias = cat.Defaults(simdb.CDBA.HW.RAMGB, simdb.CDBA.HW.DiskGB)
	tuner, err := core.New(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := controller.New(controller.Config{
		Tuner:    tuner,
		Approver: controller.ThresholdApprover{MinImprovement: 0.10},
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. DBA training request: cold-start the standard model with the
	//    workload generator's standard workloads (§2.2.1).
	fmt.Println("[controller] DBA training request: 25 episodes on CDB-A ...")
	rep, err := ctl.HandleTrainingRequest(func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(ep))
		return env.New(db, cat, workload.SysbenchRW())
	}, 25, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[controller] trained: %d iterations, best %.0f txn/sec seen, %d crashes punished\n",
		rep.Iterations, rep.BestPerf.Throughput, rep.Crashes)

	// 2. User tuning request: the user's CDB instance runs a read-write
	//    workload the model has never seen verbatim.
	fmt.Println("[controller] user tuning request received; capturing 150 s of workload ...")
	userDB := simdb.New(knobs.EngineCDB, simdb.CDBA, 777)
	res, err := ctl.HandleTuningRequest(userDB, workload.SysbenchRW())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[controller] replayed profile: %.0f%% reads, %d client threads\n",
		res.Replayed.ReadFraction*100, res.Replayed.Threads)
	fmt.Printf("[controller] recommendation: %.0f → %.0f txn/sec (%+.0f%%), latency %.0f → %.0f ms\n",
		res.Initial.Throughput, res.BestPerf.Throughput,
		(res.BestPerf.Throughput/res.Initial.Throughput-1)*100,
		res.Initial.Latency99, res.BestPerf.Latency99)
	if !res.Approved {
		fmt.Println("[controller] license DENIED (below +10% threshold); instance rolled back")
		return
	}
	fmt.Println("[controller] license granted; configuration deployed")

	// 3. Export the deployed configuration in the engine's native syntax.
	cfgText, err := knobs.FormatConfig(cat, res.Values, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- recommended my.cnf fragment (knobs changed from defaults) ---")
	fmt.Print(truncateLines(cfgText, 18))
}

func truncateLines(s string, n int) string {
	out, count := "", 0
	for _, line := range splitLines(s) {
		if count == n {
			out += "… (remaining knobs omitted)\n"
			break
		}
		out += line + "\n"
		count++
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
