// Workloads: tune every paper workload with every tuner and print the
// Figure 9-style comparison matrix. Uses a reduced training budget so the
// whole run finishes in a couple of minutes on one core.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/bestconfig"
	"cdbtune/internal/core"
	"cdbtune/internal/dba"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/ottertune"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func mkEnv(cat *knobs.Catalog, w workload.Workload, seed int64) *env.Env {
	return env.New(simdb.New(knobs.EngineCDB, simdb.CDBA, seed), cat, w)
}

func main() {
	cat := knobs.MySQL(knobs.EngineCDB)
	fmt.Printf("%-12s | %10s | %10s | %10s | %10s | %10s\n",
		"workload", "default", "BestConfig", "DBA", "OtterTune", "CDBTune")
	fmt.Println("-------------+------------+------------+------------+------------+-----------")
	for wi, w := range workload.All() {
		seed := int64(wi * 1000)
		row := []float64{}

		e := mkEnv(cat, w, seed)
		base, err := e.Measure()
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, base.Ext.Throughput)

		bres, err := bestconfig.Tune(mkEnv(cat, w, seed+1), bestconfig.Config{
			Budget: 30, RoundSamples: 10, Shrink: 0.5, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, bres.BestPerf.Throughput)

		_, dperf, err := dba.Tune(mkEnv(cat, w, seed+2))
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, dperf.Throughput)

		repo, err := ottertune.BuildRepository([]*env.Env{mkEnv(cat, w, seed+3)}, 40, dba.Recommend, seed)
		if err != nil {
			log.Fatal(err)
		}
		ores, err := ottertune.Tune(mkEnv(cat, w, seed+4), repo, ottertune.Config{
			Steps: 5, Candidates: 300, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, ores.BestPerf.Throughput)

		cfg := core.DefaultConfig(cat)
		d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
		d.ActorHidden = []int{64, 64}
		d.CriticHidden = []int{128, 64}
		cfg.DDPG = d
		cfg.UpdatesPerStep = 2
		cfg.Seed = seed
		cfg.DDPG.ActionBias = cat.Defaults(simdb.CDBA.HW.RAMGB, simdb.CDBA.HW.DiskGB)
		tuner, err := core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tuner.OfflineTrain(func(ep int) *env.Env {
			return mkEnv(cat, w, seed+10+int64(ep))
		}, 20); err != nil {
			log.Fatal(err)
		}
		tres, err := tuner.OnlineTune(mkEnv(cat, w, seed+90), 5, true)
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, tres.BestPerf.Throughput)

		fmt.Printf("%-12s |", w.Name)
		for _, v := range row {
			fmt.Printf(" %10.1f |", v)
		}
		fmt.Println()
	}
	fmt.Println("\nthroughput in txn/sec; every tuner ran against CDB-A (8 GB / 100 GB)")
}
