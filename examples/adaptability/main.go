// Adaptability: the paper's §5.3 scenario. A model trained on an 8 GB
// instance serves a tuning request on a 64 GB instance (cross testing,
// M_8G→64G) without retraining, and is compared against a model trained
// on the 64 GB instance directly (normal testing) and the expert rules.
//
//	go run ./examples/adaptability
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/core"
	"cdbtune/internal/dba"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func train(cat *knobs.Catalog, inst simdb.Instance, w workload.Workload, seed int64) *core.Tuner {
	cfg := core.DefaultConfig(cat)
	cfg.Seed = seed
	cfg.DDPG.ActionBias = cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB)
	tuner, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, err = tuner.OfflineTrain(func(ep int) *env.Env {
		return env.New(simdb.New(knobs.EngineCDB, inst, seed+int64(ep)), cat, w)
	}, 25)
	if err != nil {
		log.Fatal(err)
	}
	return tuner
}

func main() {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchWO()
	small := simdb.CDBA     // 8 GB RAM — training hardware
	big := simdb.MakeX1(64) // 64 GB RAM — the user resized their instance

	fmt.Println("training M_8G on CDB-A (8 GB) ...")
	m8 := train(cat, small, w, 1)
	fmt.Println("training M_64G on CDB-X1-64G (normal testing reference) ...")
	m64 := train(cat, big, w, 500)

	report := func(name string, t *core.Tuner, seed int64) {
		e := env.New(simdb.New(knobs.EngineCDB, big, seed), cat, w)
		res, err := t.OnlineTune(e, 5, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.1f txn/sec  %8.1f ms\n", name, res.BestPerf.Throughput, res.BestPerf.Latency99)
	}

	fmt.Println("\ntuning the 64 GB instance (sysbench write-only):")
	e := env.New(simdb.New(knobs.EngineCDB, big, 900), cat, w)
	base, err := e.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %8.1f txn/sec  %8.1f ms\n", "defaults", base.Ext.Throughput, base.Ext.Latency99)

	eDBA := env.New(simdb.New(knobs.EngineCDB, big, 901), cat, w)
	_, dperf, err := dba.Tune(eDBA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %8.1f txn/sec  %8.1f ms\n", "DBA rules", dperf.Throughput, dperf.Latency99)

	report("CDBTune M_8G→64G (cross)", m8, 902)
	report("CDBTune M_64G→64G (normal)", m64, 903)

	fmt.Println("\nThe cross-tested model tracks the normally-trained one without")
	fmt.Println("retraining — the state (63 internal metrics) reflects the new")
	fmt.Println("hardware and the policy responds to it (§5.3.1).")
}
