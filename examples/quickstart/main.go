// Quickstart: train a small CDBTune model on Sysbench read-write and use
// it to serve one online tuning request, printing the before/after
// performance and the most important recommended knobs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func main() {
	// The tunable space: the full 266-knob CDB catalog.
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()

	// Build the tuner with the paper's defaults (Table 4/5).
	cfg := core.DefaultConfig(cat)
	cfg.DDPG.ActionBias = cat.Defaults(simdb.CDBA.HW.RAMGB, simdb.CDBA.HW.DiskGB)
	tuner, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Offline training: the workload generator stress-tests fresh CDB-A
	// instances with the standard workload (cold start, §2.2.1).
	mkEnv := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(ep))
		return env.New(db, cat, w)
	}
	fmt.Println("offline training (30 episodes on CDB-A, sysbench-rw)...")
	rep, err := tuner.OfflineTrain(mkEnv, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d iterations, %d crashes punished, best seen %.0f txn/sec\n",
		rep.Iterations, rep.Crashes, rep.BestPerf.Throughput)

	// Online tuning: a user's request arrives; replay their workload and
	// recommend within 5 steps (§2.1.2).
	user := env.New(simdb.New(knobs.EngineCDB, simdb.CDBA, 12345), cat, w)
	res, err := tuner.OnlineTune(user, 5, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonline tuning request served in %.0f virtual minutes:\n", res.Seconds/60)
	fmt.Printf("  default config: %8.1f txn/sec   %8.1f ms (99th)\n", res.Initial.Throughput, res.Initial.Latency99)
	fmt.Printf("  CDBTune config: %8.1f txn/sec   %8.1f ms (99th)\n", res.BestPerf.Throughput, res.BestPerf.Latency99)
	fmt.Printf("  improvement:    %+.1f%% throughput, %+.1f%% latency\n",
		(res.BestPerf.Throughput/res.Initial.Throughput-1)*100,
		(res.BestPerf.Latency99/res.Initial.Latency99-1)*100)

	fmt.Println("\nkey recommended knobs:")
	hw := simdb.CDBA.HW
	for _, name := range []string{"innodb_buffer_pool_size", "innodb_log_file_size",
		"innodb_flush_log_at_trx_commit", "innodb_write_io_threads", "max_connections"} {
		i := cat.Index(name)
		v := cat.Knobs[i].Value(res.Best[i], hw.RAMGB, hw.DiskGB)
		fmt.Printf("  %-34s = %.0f\n", name, v)
	}
}
