// Command expdriver regenerates the paper's tables and figures from the
// simulator substrate. Run an experiment by id:
//
//	expdriver [-budget quick|full] <experiment> [...]
//
// Experiments: fig1ab fig1c fig1d table1 table2 fig5 fig6 fig7 fig8 table3
// fig9 fig10 fig11 fig12 fig14 fig15 table6 fig16to18 crossengine timing
// qdqn ablation-replay ablation-action telemetry serving timeline all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdbtune/internal/expr"
)

func main() {
	budgetName := flag.String("budget", "quick", "experiment budget: quick or full")
	format := flag.String("format", "text", "output format: text, csv or markdown")
	flag.Usage = usage
	flag.Parse()
	switch *format {
	case "text", "csv", "markdown":
		outputFormat = *format
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	var b expr.Budget
	switch *budgetName {
	case "quick":
		b = expr.Quick()
	case "full":
		b = expr.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown budget %q\n", *budgetName)
		os.Exit(2)
	}
	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "timing", "fig1c", "fig1d", "fig1ab", "table2",
			"fig5", "fig6", "fig7", "fig8", "fig9", "table3", "fig10", "fig11",
			"fig12", "fig14", "fig15", "table6", "fig16to18", "crossengine", "qdqn",
			"ablation-replay", "ablation-action", "findings", "ycsb-variants",
			"telemetry", "serving", "timeline"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, b); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// outputFormat selects how tables and figures are rendered.
var outputFormat = "text"

func printTable(t expr.Table) {
	switch outputFormat {
	case "csv":
		fmt.Print(t.CSV())
	case "markdown":
		fmt.Println(t.Markdown())
	default:
		fmt.Println(t.Render())
	}
}

func printFig(f expr.Figure) {
	switch outputFormat {
	case "csv":
		fmt.Print(f.CSV())
	case "markdown":
		fmt.Println("```")
		fmt.Println(f.Render())
		fmt.Println("```")
	default:
		fmt.Println(f.Render())
	}
}

func run(id string, b expr.Budget) error {
	printTables := func(ts []expr.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range ts {
			printTable(t)
		}
		return nil
	}
	printFigs := func(fs []expr.Figure, err error) error {
		if err != nil {
			return err
		}
		for _, f := range fs {
			printFig(f)
		}
		return nil
	}
	switch id {
	case "table1":
		printTable(expr.Table1())
	case "timing":
		printTable(expr.Timing())
	case "fig1c":
		printTable(expr.Fig1C())
	case "fig1d":
		t, err := expr.Fig1D(0)
		if err != nil {
			return err
		}
		printTable(t)
	case "fig1ab":
		return printFigs(expr.Fig1AB(b, nil))
	case "table2":
		t, err := expr.Table2(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "fig5":
		return printFigs(expr.Fig5(b, 50))
	case "fig6", "fig7", "fig8":
		order := map[string]expr.KnobOrder{"fig6": expr.OrderDBA, "fig7": expr.OrderOtterTune, "fig8": expr.OrderRandom}[id]
		tput, lat, iters, err := expr.KnobSweep(b, order, nil)
		if err != nil {
			return err
		}
		printFig(tput)
		printFig(lat)
		if id == "fig8" {
			printFig(iters)
		}
	case "fig9":
		return printTables(expr.Fig9(b))
	case "table3":
		t, err := expr.Table3(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "fig10":
		return printTables(expr.Fig10(b, nil))
	case "fig11":
		return printTables(expr.Fig11(b, nil))
	case "fig12":
		t, err := expr.Fig12(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "fig14":
		return printTables(expr.Fig14(b))
	case "fig15":
		f, err := expr.Fig15(b, nil)
		if err != nil {
			return err
		}
		printFig(f)
	case "table6":
		shrink := 1
		if b.Name == "quick" {
			shrink = 4
		}
		t, err := expr.Table6(b, shrink)
		if err != nil {
			return err
		}
		printTable(t)
	case "fig16to18":
		return printTables(expr.Fig16to18(b))
	case "crossengine":
		knobCap := 0
		if b.Name == "quick" {
			knobCap = 20
		}
		t, err := expr.CrossEngine(b, knobCap)
		if err != nil {
			return err
		}
		printTable(t)
	case "qdqn":
		t, err := expr.QLearnDQN(b, 0)
		if err != nil {
			return err
		}
		printTable(t)
	case "ablation-replay":
		t, err := expr.AblationReplay(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "ablation-action":
		t, err := expr.AblationAction(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "findings":
		t, err := expr.Findings(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "ycsb-variants":
		t, err := expr.ExtYCSBVariants(b)
		if err != nil {
			return err
		}
		printTable(t)
	case "telemetry":
		ts, err := expr.TrainingTelemetry(b, 4)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printTable(t)
		}
	case "serving":
		return printTables(expr.ServingTelemetry(b))
	case "timeline":
		ts, fig, err := expr.TimelineTelemetry(b)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printTable(t)
		}
		printFig(fig)
		if outputFormat == "text" {
			fmt.Println(fig.Plot(72, 14))
		}
	default:
		return fmt.Errorf("unknown experiment %q (run with no args for the list)", id)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: expdriver [-budget quick|full] [-format text|csv|markdown] <experiment> [...]

experiments:
  table1 timing fig1ab fig1c fig1d          setup and motivation
  table2 fig5                               efficiency (§5.1)
  fig6 fig7 fig8 fig9 table3                effectiveness (§5.2)
  fig10 fig11 fig12                         adaptability (§5.3)
  fig14 fig15 table6 fig16to18              appendix C
  crossengine                               one tuner vs four engine families (incl. LSM)
  qdqn ablation-replay ablation-action      design ablations
  findings ycsb-variants                    §5.2.3 findings + extensions
  telemetry                                 parallel-training telemetry stream
  serving                                   multi-tenant serving telemetry (warm starts, queue waits)
  timeline                                  24h dynamic-workload day with drift-aware re-tuning
  all                                       everything above
`)
}
