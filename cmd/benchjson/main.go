// Command benchjson measures the mat/nn/ddpg hot path and emits the
// machine-readable BENCH_hotpath.json trajectory that `make bench`
// tracks: GEMM throughput (GFLOP/s), µs and allocations per DDPG train
// step, µs per batched inference pass, and end-to-end training
// episodes per second. The recorded naive baseline (the kernels before
// the pooled/blocked rewrite, measured on the same machine class) is
// embedded so every emission carries its own speedup ratios.
//
// Usage:
//
//	go run ./cmd/benchjson -out BENCH_hotpath.json   # full measurement
//	go run ./cmd/benchjson -quick -out /tmp/b.json   # CI smoke (short benchtime)
//	go run ./cmd/benchjson -check BENCH_hotpath.json # validate an existing file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/mat"
	"cdbtune/internal/metrics"
	"cdbtune/internal/rl"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

// Baseline is the recorded naive-kernel measurement this file's numbers
// are compared against. See EXPERIMENTS.md ("Hot-path bench baseline")
// for the recipe that produced it; re-record it only when the reference
// machine class changes, never when the kernels do — it is the fixed
// point the perf trajectory is anchored to.
type Baseline struct {
	TrainStepUS     float64 `json:"train_step_us"`
	TrainStepAllocs float64 `json:"train_step_allocs"`
	ActBatch8US     float64 `json:"act_batch8_us"`
	GEMMGflopsMul   float64 `json:"gemm_gflops_mul"`
	EpisodesPerSec  float64 `json:"episodes_per_sec"`
}

// recordedBaseline was measured at the seed of this perf effort (naive
// axpy/dot kernels with per-call allocation in every layer); values are
// filled from the run recorded in EXPERIMENTS.md.
var recordedBaseline = Baseline{
	TrainStepUS:     33028.9,
	TrainStepAllocs: 336,
	ActBatch8US:     194.8,
	GEMMGflopsMul:   4.58,
	EpisodesPerSec:  1.25,
}

// Report is the BENCH_hotpath.json schema. requiredKeys in -check mode
// must stay in sync with the json tags here.
type Report struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"`
	GoMaxProcs int    `json:"gomaxprocs"`

	GEMMGflopsMul  float64 `json:"gemm_gflops_mul"`
	GEMMGflopsMulT float64 `json:"gemm_gflops_mult"`
	GEMMGflopsTMul float64 `json:"gemm_gflops_tmul"`

	TrainStepUS     float64 `json:"train_step_us"`
	TrainStepAllocs float64 `json:"train_step_allocs"`
	ActBatch8US     float64 `json:"act_batch8_us"`
	ActBatch8Allocs float64 `json:"act_batch8_allocs"`
	EpisodesPerSec  float64 `json:"episodes_per_sec"`

	Baseline Baseline `json:"baseline"`

	TrainStepSpeedup    float64 `json:"train_step_speedup"`
	TrainStepAllocRatio float64 `json:"train_step_alloc_reduction"`
	ActBatchSpeedup     float64 `json:"act_batch_speedup"`
}

func main() {
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	check := flag.String("check", "", "validate an existing BENCH_hotpath.json and exit")
	quick := flag.Bool("quick", false, "short benchtime smoke mode (numbers are noisy)")
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: %s OK\n", *check)
		return
	}

	benchtime := 2 * time.Second
	episodes := 6
	reps := 3
	if *quick {
		benchtime = 50 * time.Millisecond
		episodes = 2
		reps = 1
	}

	r := measure(benchtime, reps, episodes)

	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (train step %.1fµs, %.0f allocs)\n", *out, r.TrainStepUS, r.TrainStepAllocs)
}

// bench runs fn under the testing harness across reps×4 short windows
// (d/4 each, same total budget as reps runs of d) and keeps the fastest
// window. On a shared machine the minimum is the noise-robust
// estimator: interfering load can only inflate a window, never deflate
// it, and because the interference is bursty, many short windows are
// far more likely to catch a quiet gap than a few long ones.
// testing.Benchmark sizes runs from the -test.benchtime flag, so set it
// directly.
func bench(d time.Duration, reps int, fn func(b *testing.B)) testing.BenchmarkResult {
	win, n := d/4, 4*reps
	if win < 50*time.Millisecond {
		win, n = d, reps
	}
	_ = flag.Set("test.benchtime", win.String())
	best := testing.Benchmark(fn)
	for i := 1; i < n; i++ {
		if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func measure(benchtime time.Duration, reps, episodes int) Report {
	r := Report{
		Schema:     "cdbtune-hotpath-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: goMaxProcs(),
		Baseline:   recordedBaseline,
	}

	// GEMM throughput at the critic-trunk training shape (batch 64,
	// 256→256) — the single heaviest kernel invocation in a train step.
	const m, k, n = 64, 256, 256
	flops := 2 * float64(m) * float64(k) * float64(n)
	a, b, dst := randMat(1, m, k), randMat(2, k, n), mat.New(m, n)
	bt := randMat(3, n, k) // for MulT: a(m×k) × bt(n×k)ᵀ
	res := bench(benchtime, reps, func(b_ *testing.B) {
		for i := 0; i < b_.N; i++ {
			mat.Mul(dst, a, b)
		}
	})
	r.GEMMGflopsMul = flops / float64(res.NsPerOp())
	res = bench(benchtime, reps, func(b_ *testing.B) {
		for i := 0; i < b_.N; i++ {
			mat.MulT(dst, a, bt)
		}
	})
	r.GEMMGflopsMulT = flops / float64(res.NsPerOp())
	// TMul at the backward weight-gradient shape: dst(k×n) = a(m×k)ᵀ × b(m×n).
	ta, tb, tdst := randMat(5, m, k), randMat(6, m, n), mat.New(k, n)
	res = bench(benchtime, reps, func(b_ *testing.B) {
		for i := 0; i < b_.N; i++ {
			mat.TMul(tdst, ta, tb)
		}
	})
	r.GEMMGflopsTMul = flops / float64(res.NsPerOp())

	// DDPG train step at serving dimensionality: 63 internal metrics, a
	// 20-knob action (the registry/serving default), paper batch size 64.
	// This is the headline metric, so it gets twice the reps: the min-of-N
	// estimator needs more samples here than for the short GEMM kernels.
	agent := newBenchAgent()
	res = bench(benchtime, 2*reps, func(b_ *testing.B) {
		b_.ReportAllocs()
		for i := 0; i < b_.N; i++ {
			if _, ok := agent.TrainStepInfo(); !ok {
				b_.Fatal("train step refused: memory underfilled")
			}
		}
	})
	r.TrainStepUS = float64(res.NsPerOp()) / 1e3
	r.TrainStepAllocs = float64(res.AllocsPerOp())

	// Batched inference: the 8-state ActBatch pass the cross-worker
	// inference batcher issues.
	states := make([][]float64, 8)
	rng := rand.New(rand.NewSource(11))
	for i := range states {
		states[i] = make([]float64, metrics.NumMetrics)
		for j := range states[i] {
			states[i][j] = rng.Float64()
		}
	}
	res = bench(benchtime, reps, func(b_ *testing.B) {
		b_.ReportAllocs()
		for i := 0; i < b_.N; i++ {
			agent.ActBatch(states)
		}
	})
	r.ActBatch8US = float64(res.NsPerOp()) / 1e3
	r.ActBatch8Allocs = float64(res.AllocsPerOp())

	// End-to-end offline training throughput on the simulator.
	r.EpisodesPerSec = measureEpisodesPerSec(episodes)

	if r.Baseline.TrainStepUS > 0 {
		r.TrainStepSpeedup = r.Baseline.TrainStepUS / r.TrainStepUS
	}
	if r.Baseline.TrainStepAllocs > 0 && r.TrainStepAllocs > 0 {
		r.TrainStepAllocRatio = r.Baseline.TrainStepAllocs / r.TrainStepAllocs
	}
	if r.Baseline.ActBatch8US > 0 {
		r.ActBatchSpeedup = r.Baseline.ActBatch8US / r.ActBatch8US
	}
	return r
}

// newBenchAgent builds the train-step workload: default architecture,
// replay pool pre-filled past MinMemory with seeded transitions.
func newBenchAgent() *ddpg.Agent {
	cfg := ddpg.DefaultConfig(metrics.NumMetrics, 20)
	agent := ddpg.New(cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 512; i++ {
		tr := rl.Transition{
			State:     make([]float64, cfg.StateDim),
			Action:    make([]float64, cfg.ActionDim),
			NextState: make([]float64, cfg.StateDim),
			Reward:    rng.NormFloat64(),
		}
		for j := range tr.State {
			tr.State[j] = rng.Float64()
			tr.NextState[j] = rng.Float64()
		}
		for j := range tr.Action {
			tr.Action[j] = rng.Float64()
		}
		agent.Observe(tr)
	}
	return agent
}

// measureEpisodesPerSec times a short serial OfflineTrain run against
// the simulated CDB-A instance with the full MySQL knob catalog.
func measureEpisodesPerSec(episodes int) float64 {
	cat := knobs.MySQL(knobs.EngineCDB)
	w := workload.SysbenchRW()
	cfg := core.DefaultConfig(cat)
	tuner, err := core.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: episodes bench: %v\n", err)
		return 0
	}
	mkEnv := func(ep int) *env.Env {
		db := simdb.New(knobs.EngineCDB, simdb.CDBA, int64(ep))
		return env.New(db, cat, w)
	}
	start := time.Now()
	if _, err := tuner.OfflineTrain(mkEnv, episodes); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: episodes bench: %v\n", err)
		return 0
	}
	return float64(episodes) / time.Since(start).Seconds()
}

func randMat(seed int64, rows, cols int) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func goMaxProcs() int { return runtime.GOMAXPROCS(0) }

// requiredKeys is the contract the bench-smoke step in scripts/check.sh
// enforces: a BENCH_hotpath.json missing any of these keys fails -check.
var requiredKeys = []string{
	"schema",
	"gemm_gflops_mul",
	"train_step_us",
	"train_step_allocs",
	"act_batch8_us",
	"episodes_per_sec",
	"baseline",
}

func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("%s: invalid JSON: %w", path, err)
	}
	for _, k := range requiredKeys {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("%s: missing required key %q", path, k)
		}
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return fmt.Errorf("%s: schema mismatch: %w", path, err)
	}
	if r.TrainStepUS <= 0 || r.GEMMGflopsMul <= 0 {
		return fmt.Errorf("%s: non-positive measurements (train_step_us=%v, gemm_gflops_mul=%v)", path, r.TrainStepUS, r.GEMMGflopsMul)
	}
	return nil
}
