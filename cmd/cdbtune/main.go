// Command cdbtune trains and serves the CDBTune tuning model against the
// simulated cloud database fleet.
//
//	cdbtune train -workload sysbench-rw -instance CDB-A -episodes 40 -model model.bin
//	cdbtune tune  -workload tpcc -instance CDB-C -model model.bin [-steps 5]
//	cdbtune tune  -workload sysbench-rw -model model.bin -timeline diurnal24 [-hours 24]
//	cdbtune serve -addr 127.0.0.1:8080 -registry registry
//	cdbtune submit -workload sysbench-rw -wait
//	cdbtune info
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"cdbtune/internal/chaos"
	"cdbtune/internal/core"
	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/simdb"
	"cdbtune/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "info":
		err = cmdInfo()
	case "knobs":
		err = cmdKnobs(os.Args[2:])
	case "benchmark":
		err = cmdBenchmark(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdbtune:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cdbtune train -workload <name> [-instance CDB-A] [-engine cdb-mysql|lsm|…] [-episodes 40] [-workers 1] [-shards 0] [-model model.bin] [-quiet]
                [-checkpoint train.ckpt] [-checkpoint-every 5] [-resume] [-chaos]
                [-max-grad-norm 5] [-heal-budget 3] [-deadline 0] [-no-supervisor]
  cdbtune tune  -workload <name> [-instance CDB-A] [-engine cdb-mysql|lsm|…] [-steps 5] [-model model.bin] [-export my.cnf] [-chaos]
                [-timeline diurnal24|flashcrowd] [-hours 0] [-timescale 60] [-drift-threshold 0.02] [-observe-sec 30]
  cdbtune knobs [-engine cdb-mysql] [-all]
  cdbtune benchmark -config my.cnf [-workload <name>] [-instance CDB-A] [-engine cdb-mysql|lsm|…]
  cdbtune serve  [-addr 127.0.0.1:8080] [-registry registry] [-workers 2] [-queue 16]
                 [-match-radius 0.1] [-max-episodes 8] [-fine-tune-episodes 2] [-max-models 64]
                 [-timeline <name>] [-serve-hours 0] [-timescale 0] [-drift-threshold 0]
  cdbtune submit [-addr http://127.0.0.1:8080] -workload <name> [-instance CDB-A] [-wait]
                 [-timeline <name>|none] [-serve-hours 0]
  cdbtune status [-addr http://127.0.0.1:8080] [job-id]
  cdbtune models [-addr http://127.0.0.1:8080] [-promote id] [-delete id]
  cdbtune info`)
}

func instanceByName(name string) (simdb.Instance, error) {
	for _, in := range simdb.Table1() {
		if in.Name == name {
			return in, nil
		}
	}
	return simdb.Instance{}, fmt.Errorf("unknown instance %q (see `cdbtune info`)", name)
}

func engineByFlag(name string) (knobs.Engine, error) {
	e, ok := knobs.EngineByName(name)
	if !ok {
		return 0, fmt.Errorf("unknown engine %q (valid: %s)", name, strings.Join(knobs.EngineNames(), ", "))
	}
	return e, nil
}

// chaosMix is the standard seeded fault mix the -chaos flag enables: a
// few percent of everything the injector can throw, enough that every
// resilience path fires during a normal-length run.
func chaosMix(seed int64) *chaos.Injector {
	return chaos.New(chaos.Config{
		Seed:          seed,
		TransientProb: 0.05,
		ApplyFailProb: 0.03,
		StallProb:     0.05,
		StallSec:      30,
		DropoutProb:   0.05,
		CrashProb:     0.02,
	})
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	wname := fs.String("workload", "sysbench-rw", "workload name")
	iname := fs.String("instance", "CDB-A", "instance name (Table 1)")
	ename := fs.String("engine", "cdb-mysql", "storage engine (see `cdbtune info`)")
	episodes := fs.Int("episodes", 40, "training episodes")
	workers := fs.Int("workers", 1, "parallel training environments")
	shards := fs.Int("shards", 0, "replay memory shards (0 = auto: one per worker when workers > 1)")
	model := fs.String("model", "model.bin", "output model path")
	seed := fs.Int64("seed", 1, "random seed")
	quiet := fs.Bool("quiet", false, "suppress per-episode telemetry")
	ckptPath := fs.String("checkpoint", "", "checkpoint file for crash-safe training (empty = off)")
	ckptEvery := fs.Int("checkpoint-every", 5, "episodes between checkpoints")
	resume := fs.Bool("resume", false, "resume a killed run from -checkpoint")
	withChaos := fs.Bool("chaos", false, "inject a seeded standard fault mix into every training environment")
	maxGradNorm := fs.Float64("max-grad-norm", 0, "gradient-clipping threshold for actor and critic (0 = agent default; negative disables clipping)")
	healBudget := fs.Int("heal-budget", 0, "divergence rollbacks before the supervisor aborts training (0 = default 3)")
	deadline := fs.Duration("deadline", 0, "real wall-clock bound on the run; training stops with partial results at the deadline (0 = unbounded)")
	noSupervisor := fs.Bool("no-supervisor", false, "disable learner-health supervision (divergence detection and auto-rollback)")
	fs.Parse(args)

	w, err := workload.ByName(*wname)
	if err != nil {
		return err
	}
	inst, err := instanceByName(*iname)
	if err != nil {
		return err
	}
	engine, err := engineByFlag(*ename)
	if err != nil {
		return err
	}
	cat := knobs.ForEngine(engine)
	cfg := core.DefaultConfig(cat)
	cfg.Seed = *seed
	cfg.DDPG.ActionBias = cat.Defaults(inst.HW.RAMGB, inst.HW.DiskGB)
	// -shards 0 shards the replay pool automatically for parallel runs so
	// transition storage never queues behind gradient updates; a serial run
	// keeps the single-lock pool and its exact serial determinism.
	cfg.MemoryShards = *shards
	if *shards == 0 && *workers > 1 {
		cfg.MemoryShards = *workers
	}
	if *maxGradNorm != 0 {
		cfg.DDPG.MaxGradNorm = *maxGradNorm
	}
	tuner, err := core.New(cfg)
	if err != nil {
		return err
	}
	var in *chaos.Injector
	if *withChaos {
		in = chaosMix(*seed)
	}
	mk := func(ep int) *env.Env {
		db := env.OpenEngine(engine, inst, *seed+int64(ep))
		if in != nil {
			db = in.Wrap(db)
		}
		return env.New(db, cat, w)
	}
	fmt.Printf("training CDBTune: %s on %s (%s), %d episodes, %d workers\n", w.Name, inst.Name, engine, *episodes, *workers)
	var last core.EpisodeStats
	opts := core.TrainOptions{
		Episodes: *episodes,
		Workers:  *workers,
		Resume:   *resume,
		Deadline: *deadline,
		Supervisor: core.SupervisorConfig{
			Disabled:   *noSupervisor,
			HealBudget: *healBudget,
		},
	}
	if *ckptPath != "" {
		opts.Checkpoint = &core.Checkpointer{Path: *ckptPath, Every: *ckptEvery}
	} else if *resume {
		return fmt.Errorf("train: -resume requires -checkpoint")
	}
	opts.OnEpisode = func(s core.EpisodeStats) {
		last = s
		if !*quiet {
			fmt.Printf("  %s\n", s)
		}
	}
	rep, err := tuner.OfflineTrainOpts(mk, opts)
	var dErr *core.DivergenceError
	switch {
	case err == nil:
	case errors.As(err, &dErr):
		// Exhausted heal budget: the weights are the diverged ones, so no
		// model is written — the diagnosis is the deliverable.
		fmt.Printf("training aborted after %d episodes: learner diverged beyond heal budget\n  %s\n",
			rep.Episodes, dErr.Diagnosis)
		return err
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// Deadline reached: report and save what the run produced so far.
		fmt.Printf("deadline reached after %d episodes; partial results follow\n", rep.Episodes)
	default:
		return err
	}
	if rep.Resumed {
		fmt.Printf("resumed from %s: %d episodes already done\n", *ckptPath, rep.ResumedEpisodes)
	}
	fmt.Printf("episodes=%d iterations=%d crashes=%d best throughput=%.1f txn/sec (%.1f virtual hours)\n",
		rep.Episodes, rep.Iterations, rep.Crashes, rep.BestPerf.Throughput, rep.VirtualSeconds/3600)
	if rep.Episodes > 0 {
		fmt.Printf("replay shards=%d  mean inference batch=%.2f\n", last.MemoryShards, last.InferBatchMean)
	}
	if rep.Faults.Any() || rep.WorkerDeaths > 0 || rep.LostEpisodes > 0 {
		fmt.Printf("faults: %d transients, %d retries (%.0f vsec backoff), %d stalls (%.0f vsec), %d dropouts, %d worker deaths, %d lost episodes\n",
			rep.Faults.Transients, rep.Faults.Retries, rep.Faults.RetrySec,
			rep.Faults.Stalls, rep.Faults.StallSec, rep.Faults.Dropouts,
			rep.WorkerDeaths, rep.LostEpisodes)
	}
	if rep.Learner.Supervised {
		fmt.Printf("learner health: %d heals, %d snapshots, %d dropped batches, lr-scale %.3g, |Q| %.1f, grad %.1f\n",
			rep.Learner.Heals, rep.Learner.Snapshots, rep.Learner.SkippedBatches,
			rep.Learner.LRScale, rep.Learner.MeanAbsQ, rep.Learner.GradNorm)
	}
	if rep.Converged {
		fmt.Printf("converged at iteration %d\n", rep.ConvergedAt)
	} else {
		fmt.Println("not converged within the episode budget")
	}
	// Atomic write: a crash mid-save must never leave a truncated model
	// where a good one stood.
	if err := core.WriteAtomic(*model, tuner.Save); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", *model)
	return nil
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	wname := fs.String("workload", "sysbench-rw", "workload name")
	iname := fs.String("instance", "CDB-A", "instance name (Table 1)")
	ename := fs.String("engine", "cdb-mysql", "storage engine (see `cdbtune info`)")
	steps := fs.Int("steps", 5, "online tuning steps")
	model := fs.String("model", "model.bin", "model path from `cdbtune train`")
	export := fs.String("export", "", "write the recommended configuration to this file (my.cnf syntax)")
	seed := fs.Int64("seed", 42, "random seed")
	withChaos := fs.Bool("chaos", false, "inject a seeded standard fault mix into the tuned instance")
	timeline := fs.String("timeline", "", "serve a time-varying workload timeline (diurnal24, flashcrowd) with drift-aware re-tuning instead of a one-shot tune")
	hours := fs.Float64("hours", 0, "simulated hours to serve the timeline (0 = one full cycle)")
	timescale := fs.Float64("timescale", 0, "timeline compression: simulated seconds per virtual second (0 = timeline default, 60)")
	driftThreshold := fs.Float64("drift-threshold", 0, "EWMA fingerprint distance that triggers a re-tune (0 = calibrated default)")
	observeSec := fs.Float64("observe-sec", 0, "virtual seconds per drift-monitor observation window (0 = default)")
	fs.Parse(args)

	w, err := workload.ByName(*wname)
	if err != nil {
		return err
	}
	inst, err := instanceByName(*iname)
	if err != nil {
		return err
	}
	engine, err := engineByFlag(*ename)
	if err != nil {
		return err
	}
	cat := knobs.ForEngine(engine)
	cfg := core.DefaultConfig(cat)
	tuner, err := core.New(cfg)
	if err != nil {
		return err
	}
	f, err := os.Open(*model)
	if err != nil {
		return fmt.Errorf("opening model (run `cdbtune train` first): %w", err)
	}
	defer f.Close()
	if err := tuner.Load(f); err != nil {
		return err
	}

	target := env.OpenEngine(engine, inst, *seed)
	if *withChaos {
		target = chaosMix(*seed).Wrap(target)
	}
	e := env.New(target, cat, w)
	if *timeline != "" {
		tl, err := workload.TimelineByName(*timeline, w)
		if err != nil {
			return err
		}
		if *timescale > 0 {
			tl.TimeScale = *timescale
		}
		e.Timeline = tl
		return runDynamic(tuner, e, *steps, *hours, *driftThreshold, *observeSec)
	}
	fmt.Printf("online tuning: %s on %s, %d steps\n", w.Name, inst.Name, *steps)
	// The guardrail reverts to the best-known-good configuration after
	// repeated failures and steers recommendations away from knob regions
	// that crashed the instance — a no-op on a healthy run.
	guard := core.NewGuardrail(0, 0)
	res, err := tuner.OnlineTuneGuarded(e, *steps, true, guard)
	if err != nil {
		return err
	}
	fmt.Printf("initial: %.1f txn/sec, %.1f ms (99th)\n", res.Initial.Throughput, res.Initial.Latency99)
	fmt.Printf("tuned:   %.1f txn/sec, %.1f ms (99th)  [+%.1f%% throughput]\n",
		res.BestPerf.Throughput, res.BestPerf.Latency99,
		(res.BestPerf.Throughput/res.Initial.Throughput-1)*100)
	fmt.Printf("request cost: %.1f virtual minutes, %d crashes during exploration\n",
		res.Seconds/60, res.Crashes)
	if res.Reverts > 0 || res.Vetoes > 0 || res.SkippedSteps > 0 || res.Faults.Any() {
		fmt.Printf("resilience: %d reverts to best-known-good, %d vetoed proposals, %d skipped steps, %d transients / %d retries\n",
			res.Reverts, res.Vetoes, res.SkippedSteps, res.Faults.Transients, res.Faults.Retries)
	}
	fmt.Println("recommended knob settings (changed from defaults):")
	hw := inst.HW
	def := cat.Defaults(hw.RAMGB, hw.DiskGB)
	n := 0
	for i, k := range cat.Knobs {
		v := k.Value(res.Best[i], hw.RAMGB, hw.DiskGB)
		dv := k.Value(def[i], hw.RAMGB, hw.DiskGB)
		if v != dv && n < 20 {
			fmt.Printf("  %-42s %12.0f (default %.0f)\n", k.Name, v, dv)
			n++
		}
	}
	if n == 20 {
		fmt.Println("  … (remaining knobs omitted)")
	}
	if *export != "" {
		vals := cat.Denormalize(res.Best, hw.RAMGB, hw.DiskGB)
		cfgText, err := knobs.FormatConfig(cat, vals, true)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, []byte(cfgText), 0o644); err != nil {
			return err
		}
		fmt.Printf("configuration written to %s\n", *export)
	}
	return nil
}

// runDynamic is the -timeline flavor of cmdTune: instead of a one-shot
// online tune it serves the timeline for a window of simulated hours,
// streaming drift/re-tune/revert events as they happen and closing with
// a per-phase throughput summary and the safety accounting.
func runDynamic(tuner *core.Tuner, e *env.Env, steps int, hours, threshold, observeSec float64) error {
	tl := e.Timeline
	horizon := hours
	if horizon <= 0 {
		horizon = tl.TotalHours()
	}
	fmt.Printf("dynamic serving: timeline %s (%.0fh cycle at %.0fx compression), %.1f simulated hours\n",
		tl.Name, tl.TotalHours(), tl.Scale(), horizon)
	// Per-phase throughput accumulation for the closing summary.
	type phaseAgg struct {
		name    string
		sum     float64
		maxEwma float64
		n       int
	}
	var order []string
	agg := map[string]*phaseAgg{}
	rep, err := tuner.ServeDynamic(e, core.DynamicOptions{
		HorizonHours: hours,
		ObserveSec:   observeSec,
		Drift:        core.DriftConfig{Threshold: threshold},
		ReTuneSteps:  steps,
		FineTune:     true,
		OnSample: func(s core.DynamicSample) {
			a := agg[s.Phase]
			if a == nil {
				a = &phaseAgg{name: s.Phase}
				agg[s.Phase] = a
				order = append(order, s.Phase)
			}
			a.sum += s.Ext.Throughput
			if s.EWMA > a.maxEwma {
				a.maxEwma = s.EWMA
			}
			a.n++
		},
		OnEvent: func(ev core.DynamicEvent) {
			fmt.Printf("  %s\n", ev)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("served %.1f simulated hours (%.1f virtual minutes): %d samples, %d drifts, %d re-tunes, %d reverts, %d crashes\n",
		rep.Hours, rep.Seconds/60, len(rep.Samples), rep.Drifts, len(rep.Retunes), rep.Reverts, rep.Crashes)
	if len(order) > 0 {
		fmt.Println("per-phase mean throughput:")
		for _, name := range order {
			a := agg[name]
			fmt.Printf("  %-14s %10.1f txn/sec  (%d windows, peak drift ewma %.4f)\n",
				a.name, a.sum/float64(a.n), a.n, a.maxEwma)
		}
	}
	for _, rt := range rep.Retunes {
		fmt.Printf("re-tune at h%05.2f [%s]: %.1f → %.1f txn/sec (%+.1f%%), seed %s, %.1f virtual minutes\n",
			rt.Hour, rt.Phase, rt.Stale.Throughput, rt.Tuned.Throughput,
			(rt.Tuned.Throughput/rt.Stale.Throughput-1)*100, dashIfEmpty(rt.Seed), rt.Seconds/60)
	}
	if rep.Unreverted > 0 {
		return fmt.Errorf("dynamic window closed with %d unreverted guardrail violation(s)", rep.Unreverted)
	}
	fmt.Printf("final: %.1f txn/sec, %.1f ms (99th); zero unreverted guardrail violations\n",
		rep.Final.Throughput, rep.Final.Latency99)
	return nil
}

func dashIfEmpty(s string) string {
	if s == "" {
		return "in-place"
	}
	return s
}

// cmdBenchmark stress-tests a configuration file (the my.cnf syntax the
// tune -export flag writes) against a workload and reports the externals,
// next to the defaults as a reference.
func cmdBenchmark(args []string) error {
	fs := flag.NewFlagSet("benchmark", flag.ExitOnError)
	cfgPath := fs.String("config", "", "configuration file to evaluate (my.cnf syntax)")
	wname := fs.String("workload", "sysbench-rw", "workload name")
	iname := fs.String("instance", "CDB-A", "instance name (Table 1)")
	ename := fs.String("engine", "cdb-mysql", "storage engine (see `cdbtune info`)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	if *cfgPath == "" {
		return fmt.Errorf("benchmark: -config is required")
	}
	w, err := workload.ByName(*wname)
	if err != nil {
		return err
	}
	inst, err := instanceByName(*iname)
	if err != nil {
		return err
	}
	engine, err := engineByFlag(*ename)
	if err != nil {
		return err
	}
	cat := knobs.ForEngine(engine)
	f, err := os.Open(*cfgPath)
	if err != nil {
		return err
	}
	defer f.Close()
	hw := inst.HW
	values, unknown, err := knobs.ParseConfig(cat, f, hw.RAMGB, hw.DiskGB)
	if err != nil {
		return err
	}
	for _, u := range unknown {
		fmt.Fprintf(os.Stderr, "warning: unknown knob %q ignored\n", u)
	}
	// Reference: defaults.
	db := env.OpenEngine(engine, inst, *seed)
	base, err := db.RunWorkload(w, 150)
	if err != nil {
		return err
	}
	// Normalize the parsed actual values and deploy.
	x := make([]float64, cat.Len())
	for i, k := range cat.Knobs {
		x[i] = k.Normalize(values[i], hw.RAMGB, hw.DiskGB)
	}
	if _, err := db.ApplyKnobs(cat, x); err != nil {
		return err
	}
	res, err := db.RunWorkload(w, 150)
	if err != nil {
		return fmt.Errorf("configuration crashed the instance: %w", err)
	}
	fmt.Printf("%s on %s:\n", w.Name, inst.Name)
	fmt.Printf("  defaults: %10.1f txn/sec  %10.1f ms (99th)\n", base.Ext.Throughput, base.Ext.Latency99)
	fmt.Printf("  %-9s %10.1f txn/sec  %10.1f ms (99th)  [%+.1f%% throughput]\n",
		*cfgPath+":", res.Ext.Throughput, res.Ext.Latency99,
		(res.Ext.Throughput/base.Ext.Throughput-1)*100)
	return nil
}

func cmdKnobs(args []string) error {
	fs := flag.NewFlagSet("knobs", flag.ExitOnError)
	engineName := fs.String("engine", "cdb-mysql", "storage engine (see `cdbtune info`)")
	all := fs.Bool("all", false, "include minor knobs without descriptions")
	fs.Parse(args)
	engine, err := engineByFlag(*engineName)
	if err != nil {
		return err
	}
	cat := knobs.ForEngine(engine)
	fmt.Printf("%s: %d tunable knobs\n", engine, cat.Len())
	shown := 0
	for _, k := range cat.Knobs {
		if k.Desc == "" && !*all {
			continue
		}
		restart := "dynamic"
		if k.Restart {
			restart = "restart"
		}
		fmt.Printf("  %-42s [%6.4g .. %-8.4g] default %-8.4g %-7s %s\n",
			k.Name, k.Min, k.Max, k.Default, restart, k.Desc)
		shown++
	}
	if !*all {
		fmt.Printf("  … plus %d minor knobs (use -all to list)\n", cat.Len()-shown)
	}
	return nil
}

func cmdInfo() error {
	fmt.Println("engines and knob catalogs:")
	for _, name := range knobs.EngineNames() {
		e, _ := knobs.EngineByName(name)
		fmt.Printf("  %-12s %d tunable knobs\n", e, knobs.ForEngine(e).Len())
	}
	fmt.Println("instances (Table 1):")
	for _, in := range simdb.Table1() {
		fmt.Printf("  %-8s %4.0f GB RAM  %4.0f GB disk\n", in.Name, in.HW.RAMGB, in.HW.DiskGB)
	}
	fmt.Println("workloads:")
	for _, w := range workload.All() {
		fmt.Printf("  %-12s reads %.0f%%  scans %.0f%%  %d threads  %.1f GB data\n",
			w.Name, w.ReadFraction*100, w.ScanFraction*100, w.Threads, w.DataSizeGB)
	}
	return nil
}
