package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cdbtune/internal/env"
	"cdbtune/internal/knobs"
	"cdbtune/internal/registry"
	"cdbtune/internal/server"
	"cdbtune/internal/simdb"
)

// cmdServe runs the multi-tenant tuning service: the HTTP API over the
// session manager and the workload-fingerprint model registry.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	ename := fs.String("engine", "cdb-mysql", "storage engine served to all sessions (see `cdbtune info`)")
	regDir := fs.String("registry", "registry", "model registry directory")
	workers := fs.Int("workers", 2, "concurrent tuning sessions")
	queue := fs.Int("queue", 16, "admission queue depth (beyond it submissions get 429)")
	maxEntries := fs.Int("max-models", registry.DefaultMaxEntries, "registry bound before eviction")
	matchRadius := fs.Float64("match-radius", 0.1, "fingerprint distance for a warm-start match")
	maxEpisodes := fs.Int("max-episodes", 8, "scratch-training episode cap per session")
	fineTune := fs.Int("fine-tune-episodes", 2, "fine-tune episode cap for warm-started sessions")
	steps := fs.Int("steps", 5, "online tuning steps per request")
	seed := fs.Int64("seed", 1, "random seed")
	timeline := fs.String("timeline", "", "default timeline for dynamic serving after each tune (empty = static jobs)")
	serveHours := fs.Float64("serve-hours", 0, "default simulated hours per dynamic serving window (0 = one timeline cycle)")
	timescale := fs.Float64("timescale", 0, "timeline compression override: simulated seconds per virtual second (0 = timeline default)")
	driftThreshold := fs.Float64("drift-threshold", 0, "EWMA fingerprint distance that triggers a re-tune (0 = calibrated default)")
	fs.Parse(args)

	engine, err := engineByFlag(*ename)
	if err != nil {
		return err
	}
	reg, err := registry.Open(*regDir, registry.WithMaxEntries(*maxEntries))
	if err != nil {
		return err
	}
	m, err := server.NewManager(server.Config{
		Registry: reg,
		Catalog:  knobs.ForEngine(engine),
		MakeDB: func(inst simdb.Instance, seed int64) env.Database {
			return env.OpenEngine(engine, inst, seed)
		},
		Workers:             *workers,
		QueueDepth:          *queue,
		OnlineSteps:         *steps,
		MaxScratchEpisodes:  *maxEpisodes,
		MaxFineTuneEpisodes: *fineTune,
		MatchRadius:         *matchRadius,
		Seed:                *seed,
		Timeline:            *timeline,
		ServeHours:          *serveHours,
		TimeScale:           *timescale,
		DriftThreshold:      *driftThreshold,
	})
	if err != nil {
		return err
	}
	srv := server.NewServer(m)
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("cdbtune serving on http://%s (registry %s: %d models, %d workers, queue %d)\n",
		bound, *regDir, reg.Len(), *workers, *queue)
	fmt.Println("submit with: cdbtune submit -addr http://" + bound + " -workload sysbench-rw")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("shutting down")
	return srv.Close()
}

// cmdSubmit submits one tuning request to a running service, optionally
// following its progress stream to completion.
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "service base URL")
	wname := fs.String("workload", "sysbench-rw", "workload name")
	iname := fs.String("instance", "CDB-A", "instance name (Table 1)")
	seed := fs.Int64("seed", 0, "user-instance seed (0 = server-derived)")
	wait := fs.Bool("wait", true, "follow the progress stream until the session finishes")
	timeline := fs.String("timeline", "", "serve this timeline dynamically after tuning ('none' opts out of a server default)")
	serveHours := fs.Float64("serve-hours", 0, "simulated hours for the dynamic serving window (0 = one timeline cycle)")
	fs.Parse(args)

	body, _ := json.Marshal(server.JobRequest{
		Workload: *wname, Instance: *iname, Seed: *seed,
		Timeline: *timeline, ServeHours: *serveHours,
	})
	resp, err := http.Post(strings.TrimRight(*addr, "/")+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("service at capacity; retry after %s s", resp.Header.Get("Retry-After"))
	}
	if resp.StatusCode != http.StatusAccepted {
		return httpError(resp)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	fmt.Printf("submitted %s: %s on %s\n", st.ID, st.Workload, st.Instance)
	if !*wait {
		return nil
	}
	return followEvents(*addr, st.ID)
}

// followEvents tails a job's NDJSON progress stream, printing each event
// and the terminal summary.
func followEvents(addr, id string) error {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var ev struct {
			Stage   string           `json:"stage"`
			Message string           `json:"message"`
			Final   bool             `json:"final"`
			Job     server.JobStatus `json:"job"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if ev.Final {
			printJob(ev.Job)
			if ev.Job.State != server.StateDone {
				return fmt.Errorf("job %s %s: %s", ev.Job.ID, ev.Job.State, ev.Job.Error)
			}
			return nil
		}
		fmt.Printf("  [%-11s] %s\n", ev.Stage, ev.Message)
	}
	return sc.Err()
}

func printJob(st server.JobStatus) {
	fmt.Printf("%s  %-12s %-8s %-8s", st.ID, st.Workload, st.Instance, st.State)
	if st.Path != "" {
		fmt.Printf("  path=%s", st.Path)
		if st.Path == server.PathWarm {
			fmt.Printf(" (match %s, d=%.4f, %d episodes saved)", st.MatchID, st.MatchDistance, st.EpisodesSaved)
		}
	}
	if st.Episodes > 0 {
		fmt.Printf("  episodes=%d", st.Episodes)
	}
	if st.BestThroughput > 0 {
		fmt.Printf("  best=%.1f tx/s (%+.1f%%)", st.BestThroughput, st.Improvement*100)
	}
	if st.Timeline != "" {
		fmt.Printf("  timeline=%s drifts=%d retunes=%d reverts=%d", st.Timeline, st.Drifts, st.Retunes, st.Reverts)
	}
	if st.Error != "" {
		fmt.Printf("  error=%s", st.Error)
	}
	fmt.Println()
}

// cmdStatus lists jobs (or one job) plus the service metrics.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "service base URL")
	fs.Parse(args)
	base := strings.TrimRight(*addr, "/")

	if fs.NArg() > 0 {
		var st server.JobStatus
		if err := getInto(base+"/api/v1/jobs/"+fs.Arg(0), &st); err != nil {
			return err
		}
		printJob(st)
		return nil
	}
	var jobs struct {
		Jobs []server.JobStatus `json:"jobs"`
	}
	if err := getInto(base+"/api/v1/jobs", &jobs); err != nil {
		return err
	}
	if len(jobs.Jobs) == 0 {
		fmt.Println("no jobs")
	}
	for _, st := range jobs.Jobs {
		printJob(st)
	}
	var mt server.Metrics
	if err := getInto(base+"/metrics.json", &mt); err != nil {
		return err
	}
	fmt.Printf("service: %d submitted, %d rejected, %d done, %d failed, %d canceled; %d active, %d queued\n",
		mt.Submitted, mt.Rejected, mt.Completed, mt.Failed, mt.Canceled, mt.Active, mt.Queued)
	fmt.Printf("warm starts: %d hits / %d misses; %d episodes trained, %d saved; queue wait p50 %.0f ms, p95 %.0f ms\n",
		mt.WarmHits, mt.WarmMisses, mt.EpisodesTrained, mt.EpisodesSaved, mt.QueueWaitP50Ms, mt.QueueWaitP95Ms)
	return nil
}

// cmdModels lists, promotes or deletes registry entries through the API.
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "service base URL")
	promote := fs.String("promote", "", "pin this model ID against eviction (preferred on near-ties)")
	del := fs.String("delete", "", "delete this model ID")
	fs.Parse(args)
	base := strings.TrimRight(*addr, "/")

	if *promote != "" {
		req, _ := http.NewRequest(http.MethodPost, base+"/api/v1/models/"+*promote+"/promote", nil)
		return doSimple(req, "promoted "+*promote)
	}
	if *del != "" {
		req, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/models/"+*del, nil)
		return doSimple(req, "deleted "+*del)
	}
	var out struct {
		Models  []registry.Meta   `json:"models"`
		Corrupt map[string]string `json:"corrupt"`
	}
	if err := getInto(base+"/api/v1/models", &out); err != nil {
		return err
	}
	if len(out.Models) == 0 {
		fmt.Println("registry is empty")
	}
	for _, m := range out.Models {
		pin := " "
		if m.Pinned {
			pin = "*"
		}
		fmt.Printf("%s %s v%-3d %-12s %-8s episodes=%-4d scratch=%-4d best=%.1f tx/s\n",
			pin, m.ID, m.Version, m.Workload, m.Instance, m.Episodes, m.ScratchEpisodes, m.BestThroughput)
	}
	for f, why := range out.Corrupt {
		fmt.Printf("! %s CORRUPT: %s\n", f, why)
	}
	return nil
}

func getInto(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func doSimple(req *http.Request, okMsg string) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	fmt.Println(okMsg)
	return nil
}

func httpError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}
