// Command loadgen is the fleet chaos harness: it spawns a multi-process
// tuning fleet (re-executing itself with -node for each serve process),
// drives concurrent simulated tenants through keyed fleet submissions,
// injects process-kill and lease-stall faults mid-run, and asserts the
// robustness contract — zero lost jobs, at least one recorded failover
// via lease steal, bounded submit-to-deploy p99, and a CRC-clean shared
// registry afterwards. `make fleet-smoke` runs it with the defaults.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"cdbtune/internal/chaos"
	"cdbtune/internal/core"
	"cdbtune/internal/fleet"
	"cdbtune/internal/knobs"
	"cdbtune/internal/metrics"
	"cdbtune/internal/registry"
	"cdbtune/internal/rl/ddpg"
	"cdbtune/internal/server"
)

func main() {
	var (
		nodeMode = flag.Bool("node", false, "run as one fleet serve process (internal)")
		id       = flag.String("id", "", "node ID (with -node)")
		dir      = flag.String("dir", "", "shared fleet directory (default: a temp dir)")
		ttl      = flag.Duration("ttl", 500*time.Millisecond, "lease TTL")
		nodes    = flag.Int("fleet", 3, "fleet size (processes)")
		tenants  = flag.Int("tenants", 50, "concurrent simulated tenants")
		killIdx  = flag.Int("kill", 1, "node index to SIGKILL mid-run (-1 disables)")
		stallIdx = flag.Int("stall", 2, "node index whose lease renewals stall mid-run (-1 disables)")
		timeout  = flag.Duration("timeout", 4*time.Minute, "overall run budget")
		p99Max   = flag.Duration("p99", 60*time.Second, "submit-to-deploy p99 bound")
	)
	flag.Parse()

	if *nodeMode {
		runNode(*id, *dir, *ttl)
		return
	}
	if err := runDriver(*dir, *ttl, *nodes, *tenants, *killIdx, *stallIdx, *timeout, *p99Max); err != nil {
		log.Fatalf("fleet-smoke: FAIL: %v", err)
	}
}

// serveConfig is the harness's fast tuning configuration: an 8-knob
// subset and a small network, so a session costs tens of milliseconds
// against the simulator and 50 tenants finish in seconds.
func serveConfig(logf func(string, ...any)) server.Config {
	full := knobs.MySQL(knobs.EngineCDB)
	idx := make([]int, 8)
	for i := range idx {
		idx[i] = i
	}
	cat := full.Subset(idx)
	return server.Config{
		Workers:             4,
		QueueDepth:          64,
		MaxPerTenant:        2,
		OnlineSteps:         3,
		MinScratchEpisodes:  4,
		MaxScratchEpisodes:  6,
		MaxFineTuneEpisodes: 2,
		ChunkEpisodes:       2,
		ProbeSteps:          2,
		MatchRadius:         0.25,
		Seed:                11,
		Catalog:             cat,
		TunerConfig: func(cat *knobs.Catalog) core.Config {
			cfg := core.DefaultConfig(cat)
			d := ddpg.DefaultConfig(metrics.NumMetrics, cat.Len())
			d.ActorHidden = []int{24, 24}
			d.CriticHidden = []int{32, 24}
			cfg.DDPG = d
			cfg.StepsPerEpisode = 6
			cfg.UpdatesPerStep = 1
			return cfg
		},
		Logf: logf,
	}
}

// runNode is the child-process mode: one fleet serve process that lives
// until SIGTERM (graceful drain) or SIGKILL (the chaos).
func runNode(id, dir string, ttl time.Duration) {
	if id == "" || dir == "" {
		log.Fatal("loadgen -node requires -id and -dir")
	}
	logger := log.New(os.Stderr, "["+id+"] ", log.Ltime|log.Lmicroseconds)
	n, err := fleet.Start(fleet.Config{
		ID: id, Dir: dir, LeaseTTL: ttl,
		Server: serveConfig(logger.Printf),
		Logf:   logger.Printf,
	})
	if err != nil {
		log.Fatalf("starting node %s: %v", id, err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	if err := n.Stop(); err != nil {
		logger.Printf("stop: %v", err)
	}
}

// tenantResult is one simulated tenant's outcome.
type tenantResult struct {
	key     string
	state   string
	errMsg  string
	latency time.Duration
}

func runDriver(dir string, ttl time.Duration, nodes, tenants, killIdx, stallIdx int, timeout, p99Max time.Duration) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fleet-smoke-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Spawn the fleet.
	ids := make([]string, nodes)
	procs := make([]*exec.Cmd, nodes)
	for i := range procs {
		ids[i] = fmt.Sprintf("node%d", i)
		cmd := exec.Command(self, "-node", "-id", ids[i], "-dir", dir, "-ttl", ttl.String())
		cmd.Stderr = os.Stderr
		cmd.Stdout = os.Stdout
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawning %s: %w", ids[i], err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				_ = p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			_ = p.Wait()
		}
	}()

	membersDir := filepath.Join(dir, "members")
	if err := waitUntil(ctx, "all members live", func() bool {
		alive, _ := fleet.Alive(membersDir)
		return len(alive) == nodes
	}); err != nil {
		return err
	}
	log.Printf("fleet-smoke: %d-process fleet up in %s (ttl %s)", nodes, dir, ttl)

	// Launch the tenant herd: one keyed job per tenant, submitted and
	// polled through whatever nodes are alive at each attempt.
	results := make([]tenantResult, tenants)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runTenant(ctx, membersDir, i)
		}(i)
	}

	// Chaos, armed only once both victims own pending work, so the kill
	// and the stall provably strand jobs for failover to recover.
	journal, err := fleet.OpenJournal(filepath.Join(dir, "jobs"))
	if err != nil {
		return err
	}
	plan := &chaos.FleetPlan{}
	if stallIdx >= 0 && stallIdx < nodes {
		plan.Events = append(plan.Events, chaos.FleetEvent{
			At: 0, Kind: chaos.FleetStall, Node: stallIdx, Stall: 6 * ttl,
		})
	}
	if killIdx >= 0 && killIdx < nodes {
		plan.Events = append(plan.Events, chaos.FleetEvent{
			At: 100 * time.Millisecond, Kind: chaos.FleetKill, Node: killIdx,
		})
	}
	if len(plan.Events) > 0 {
		if err := waitUntil(ctx, "victims own pending jobs", func() bool {
			for _, ev := range plan.Events {
				pend, _ := journal.PendingOn(ids[ev.Node])
				if len(pend) == 0 {
					return false
				}
			}
			return true
		}); err != nil {
			return err
		}
		plan.Run(ctx, func(ev chaos.FleetEvent) {
			switch ev.Kind {
			case chaos.FleetKill:
				pend, _ := journal.PendingOn(ids[ev.Node])
				log.Printf("fleet-smoke: CHAOS kill %s (%d pending jobs stranded)", ids[ev.Node], len(pend))
				_ = procs[ev.Node].Process.Kill()
			case chaos.FleetStall:
				alive, _ := fleet.Alive(membersDir)
				addr, ok := alive[ids[ev.Node]]
				if !ok {
					log.Printf("fleet-smoke: CHAOS stall target %s already unroutable", ids[ev.Node])
					return
				}
				log.Printf("fleet-smoke: CHAOS stall %s lease renewals for %s", ids[ev.Node], ev.Stall)
				body, _ := json.Marshal(map[string]int{"ms": int(ev.Stall / time.Millisecond)})
				resp, err := http.Post("http://"+addr+"/fleet/chaos/stall", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Printf("fleet-smoke: stall injection failed: %v", err)
					return
				}
				resp.Body.Close()
			}
		})
	}

	wg.Wait()
	elapsed := time.Since(start)

	// ---- Assertions ----
	lost, failed := 0, 0
	var lats []float64
	for _, r := range results {
		switch r.state {
		case server.StateDone:
			lats = append(lats, float64(r.latency)/float64(time.Millisecond))
		case "":
			lost++
			log.Printf("fleet-smoke: job %s LOST: %s", r.key, r.errMsg)
		default:
			failed++
			log.Printf("fleet-smoke: job %s ended %s: %s", r.key, r.state, r.errMsg)
		}
	}
	if lost > 0 || failed > 0 {
		return fmt.Errorf("%d lost and %d failed of %d jobs", lost, failed, tenants)
	}

	sort.Float64s(lats)
	q := func(p float64) float64 { return lats[int(p*float64(len(lats)-1))] }
	p50, p99 := q(0.50), q(0.99)
	if time.Duration(p99)*time.Millisecond > p99Max {
		return fmt.Errorf("submit-to-deploy p99 %.0fms exceeds bound %s", p99, p99Max)
	}

	// At least one failover via lease steal must be on record.
	failovers, requeued := 0, 0
	alive, _ := fleet.Alive(membersDir)
	for _, addr := range alive {
		resp, err := http.Get("http://" + addr + "/fleet/stats")
		if err != nil {
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st fleet.Stats
		if json.Unmarshal(data, &st) == nil {
			failovers += st.Failovers
			requeued += st.Requeued
		}
	}
	if len(plan.Events) > 0 && failovers == 0 {
		return fmt.Errorf("chaos fired %d events but no node recorded a failover lease steal", plan.Fired())
	}

	// The shared registry must pass CRC validation after the chaos.
	reg, err := registry.Open(filepath.Join(dir, "registry"))
	if err != nil {
		return fmt.Errorf("reopening registry: %w", err)
	}
	healthy, corrupt := reg.Verify()
	if len(corrupt) > 0 {
		return fmt.Errorf("registry CRC validation: %d corrupt entries: %v", len(corrupt), corrupt)
	}

	log.Printf("fleet-smoke: PASS: %d/%d jobs done in %s, 0 lost; failovers=%d (requeued %d); submit-to-deploy p50=%.0fms p99=%.0fms; registry %d healthy 0 corrupt",
		len(lats), tenants, elapsed.Round(time.Millisecond), failovers, requeued, p50, p99, healthy)
	return nil
}

// runTenant submits one keyed job and polls it to a terminal state,
// riding out dead nodes (retry against whoever is alive) and admission
// pushback (jittered backoff on 429).
func runTenant(ctx context.Context, membersDir string, i int) tenantResult {
	key := fmt.Sprintf("t%04d", i)
	res := tenantResult{key: key}
	rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
	body, _ := json.Marshal(fleet.SubmitRequest{
		Key: key,
		Request: server.JobRequest{
			Tenant:   fmt.Sprintf("tenant-%02d", i%10),
			Workload: []string{"sysbench-ro", "sysbench-rw"}[i%2],
		},
	})
	start := time.Now()

	// Submit until some node accepts (or the record already exists).
	client := &http.Client{Timeout: 10 * time.Second}
	for submitted := false; !submitted; {
		if ctx.Err() != nil {
			res.errMsg = "submit: " + ctx.Err().Error()
			return res
		}
		addr, ok := pickNode(membersDir, rng)
		if !ok {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		resp, err := client.Post("http://"+addr+"/fleet/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
			continue
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case code == http.StatusAccepted || code == http.StatusOK:
			submitted = true
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
		default:
			res.errMsg = fmt.Sprintf("submit: HTTP %d", code)
			return res
		}
	}

	// Poll the journal record to a terminal state.
	for {
		if ctx.Err() != nil {
			res.errMsg = "poll: " + ctx.Err().Error()
			return res
		}
		addr, ok := pickNode(membersDir, rng)
		if !ok {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		resp, err := client.Get("http://" + addr + "/fleet/jobs/" + key)
		if err != nil {
			time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
			continue
		}
		var rec fleet.Record
		derr := json.NewDecoder(resp.Body).Decode(&rec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if rec.Terminal() {
			res.state, res.errMsg, res.latency = rec.State, rec.Error, time.Since(start)
			return res
		}
		time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
	}
}

// pickNode returns a random live member's address.
func pickNode(membersDir string, rng *rand.Rand) (string, bool) {
	alive, err := fleet.Alive(membersDir)
	if err != nil || len(alive) == 0 {
		return "", false
	}
	addrs := make([]string, 0, len(alive))
	for _, a := range alive {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs[rng.Intn(len(addrs))], true
}

func waitUntil(ctx context.Context, what string, cond func() bool) error {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if cond() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("timed out waiting for %s", what)
		case <-tick.C:
		}
	}
}
